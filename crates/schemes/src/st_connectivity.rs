//! `s`–`t` vertex connectivity = k (§4.2): `O(log k)` bits in general,
//! `Θ(1)` on planar graphs via colour-reuse of path indices.

use crate::labels::StMark;
use lcp_core::{BitReader, BitString, BitWriter, Instance, Proof, ProofRef, Scheme, View};
use lcp_graph::menger;

/// How path identities are written into the proof (§4.2's last
/// paragraph).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PathIndexMode {
    /// Every path carries a distinct index `0..k` — `O(log k)` bits.
    Distinct,
    /// Paths are *coloured* so that adjacent paths differ; non-adjacent
    /// paths may share a colour. On planar graphs a constant number of
    /// colours suffices, giving the `Θ(1)` planar row.
    Colored,
}

/// The §4.2 scheme certifying `κ(s, t) = k` exactly.
///
/// Proof per node: region tag (`S`/`C`/`T`, 2 bits), an on-path flag, and
/// for interior path nodes the path index plus the position along the
/// path modulo 3 (the orientation trick of §4.2).
///
/// The verifier re-checks, with radius 1 (paper conditions (i)–(iv)):
///
/// 1. `s` sees exactly `k` path-starts (distinct indices in
///    [`PathIndexMode::Distinct`], a count in [`PathIndexMode::Colored`]);
///    symmetrically for `t`.
/// 2. every interior path node has exactly one predecessor and one
///    successor (`s`/`t` adjacency standing in at the ends);
/// 3. no edge joins region `S` to region `T`;
/// 4. every `C` node lies on a path, with predecessor on the `S` side
///    and successor on the `T` side.
///
/// Together: at least `k` vertex-disjoint `s`–`t` paths exist (lower
/// bound) and `C`, of size `k`, separates `s` from `t` (upper bound).
///
/// Promises: exactly one `S` and one `T` mark; `s` and `t` non-adjacent;
/// `k ≥ 1`; in `Colored` mode the graph family must keep the path
/// conflict graph colourable with few colours (e.g. planar).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StConnectivity {
    /// The connectivity value `k ≥ 1`, known to all nodes.
    pub k: usize,
    /// Index encoding mode.
    pub mode: PathIndexMode,
}

impl StConnectivity {
    /// The general-family variant (distinct indices, `O(log k)` bits).
    pub fn general(k: usize) -> Self {
        assert!(k >= 1, "connectivity value must be positive");
        StConnectivity {
            k,
            mode: PathIndexMode::Distinct,
        }
    }

    /// The planar-family variant (coloured indices, `Θ(1)` bits).
    pub fn planar(k: usize) -> Self {
        assert!(k >= 1, "connectivity value must be positive");
        StConnectivity {
            k,
            mode: PathIndexMode::Colored,
        }
    }
}

/// Region tags of the §4.2 partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Region {
    S,
    C,
    T,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct ConnCert {
    region: Region,
    /// `(index, position mod 3)` for interior path nodes.
    path: Option<(u64, u64)>,
}

fn encode_cert(cert: &ConnCert) -> BitString {
    let mut w = BitWriter::new();
    let r = match cert.region {
        Region::S => 0u64,
        Region::C => 1,
        Region::T => 2,
    };
    w.write_u64(r, 2);
    match cert.path {
        Some((idx, pos)) => {
            w.write_bit(true);
            w.write_gamma(idx);
            w.write_u64(pos, 2);
        }
        None => {
            w.write_bit(false);
        }
    }
    w.finish()
}

fn decode_cert(s: ProofRef<'_>) -> Option<ConnCert> {
    let mut r = BitReader::new(s);
    let region = match r.read_u64(2).ok()? {
        0 => Region::S,
        1 => Region::C,
        2 => Region::T,
        _ => return None,
    };
    let path = if r.read_bit().ok()? {
        let idx = r.read_gamma().ok()?;
        let pos = r.read_u64(2).ok()?;
        if pos > 2 {
            return None;
        }
        Some((idx, pos))
    } else {
        None
    };
    r.is_exhausted().then_some(ConnCert { region, path })
}

fn endpoints(inst: &Instance<StMark>) -> Option<(usize, usize)> {
    let labels = inst.node_labels();
    let s = labels.iter().position(|&m| m == StMark::S)?;
    let t = labels.iter().position(|&m| m == StMark::T)?;
    (labels.iter().filter(|&&m| m == StMark::S).count() == 1
        && labels.iter().filter(|&&m| m == StMark::T).count() == 1)
        .then_some((s, t))
}

impl Scheme for StConnectivity {
    type Node = StMark;
    type Edge = ();

    fn name(&self) -> String {
        format!(
            "st-connectivity={}[{}]",
            self.k,
            match self.mode {
                PathIndexMode::Distinct => "distinct",
                PathIndexMode::Colored => "colored",
            }
        )
    }

    fn radius(&self) -> usize {
        1
    }

    fn holds(&self, inst: &Instance<StMark>) -> bool {
        let Some((s, t)) = endpoints(inst) else {
            return false;
        };
        if inst.graph().has_edge(s, t) {
            return false; // κ undefined across an edge; outside the promise
        }
        menger::local_vertex_connectivity(inst.graph(), s, t) == self.k
    }

    fn prove(&self, inst: &Instance<StMark>) -> Option<Proof> {
        let (s, t) = endpoints(inst)?;
        let g = inst.graph();
        if g.has_edge(s, t) {
            return None;
        }
        let cert = menger::menger_certificate(g, s, t);
        if cert.paths.len() != self.k || cert.separator.len() != self.k {
            return None;
        }
        // Region assignment: C = separator, S = reachable from s in G − C.
        let mut region = vec![Region::T; g.n()];
        let in_c: Vec<bool> = {
            let mut v = vec![false; g.n()];
            for &c in &cert.separator {
                v[c] = true;
            }
            v
        };
        let mut stack = vec![s];
        let mut seen = vec![false; g.n()];
        seen[s] = true;
        while let Some(u) = stack.pop() {
            region[u] = Region::S;
            for &w in g.neighbors(u) {
                if !seen[w] && !in_c[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        for &c in &cert.separator {
            region[c] = Region::C;
        }
        debug_assert_eq!(region[s], Region::S);
        debug_assert_eq!(region[t], Region::T);
        // Path indices: distinct, or greedy colours on the path conflict
        // graph (adjacent paths must differ).
        let interiors: Vec<Vec<usize>> = cert
            .paths
            .iter()
            .map(|p| p[1..p.len() - 1].to_vec())
            .collect();
        let index_of_path: Vec<u64> = match self.mode {
            PathIndexMode::Distinct => (0..self.k as u64).collect(),
            PathIndexMode::Colored => {
                let k = self.k;
                let mut conflicts = vec![vec![false; k]; k];
                for i in 0..k {
                    for j in (i + 1)..k {
                        let touch = interiors[i]
                            .iter()
                            .any(|&u| interiors[j].iter().any(|&w| g.has_edge(u, w)));
                        conflicts[i][j] = touch;
                        conflicts[j][i] = touch;
                    }
                }
                let mut colors = vec![u64::MAX; k];
                for i in 0..k {
                    let mut used: Vec<bool> = vec![false; k];
                    for j in 0..k {
                        if conflicts[i][j] && colors[j] != u64::MAX {
                            used[colors[j] as usize] = true;
                        }
                    }
                    colors[i] = used.iter().position(|&b| !b).expect("≤ k colours") as u64;
                }
                colors
            }
        };
        let mut path_field: Vec<Option<(u64, u64)>> = vec![None; g.n()];
        for (i, interior) in interiors.iter().enumerate() {
            for (j, &v) in interior.iter().enumerate() {
                // True position along the path is j + 1 (s sits at 0).
                path_field[v] = Some((index_of_path[i], ((j + 1) % 3) as u64));
            }
        }
        Some(Proof::from_fn(g.n(), |v| {
            encode_cert(&ConnCert {
                region: region[v],
                path: path_field[v],
            })
        }))
    }

    fn verify(&self, view: &View<StMark>) -> bool {
        let cert = |u: usize| decode_cert(view.proof(u));
        let c = view.center();
        let Some(mine) = cert(c) else {
            return false;
        };
        // Decode all neighbours up front.
        let mut nbrs = Vec::with_capacity(view.degree(c));
        for &u in view.neighbors(c) {
            let Some(cu) = cert(u) else {
                return false;
            };
            nbrs.push((u, cu));
        }
        // (iii) No S–T edge, in either direction.
        for &(_, cu) in &nbrs {
            if (mine.region == Region::S && cu.region == Region::T)
                || (mine.region == Region::T && cu.region == Region::S)
            {
                return false;
            }
        }
        let k = self.k as u64;
        match view.node_label(c) {
            StMark::S => {
                if mine.region != Region::S || mine.path.is_some() {
                    return false;
                }
                // (i) Exactly k path starts (stored position ≡ 1).
                let starts: Vec<u64> = nbrs
                    .iter()
                    .filter_map(|&(_, cu)| cu.path)
                    .filter(|&(_, pos)| pos == 1)
                    .map(|(idx, _)| idx)
                    .collect();
                self.check_endpoint_indices(&starts, k)
            }
            StMark::T => {
                if mine.region != Region::T || mine.path.is_some() {
                    return false;
                }
                // (i) Exactly k path ends: every on-path neighbour of t.
                let ends: Vec<u64> = nbrs
                    .iter()
                    .filter_map(|&(_, cu)| cu.path)
                    .map(|(idx, _)| idx)
                    .collect();
                self.check_endpoint_indices(&ends, k)
            }
            StMark::Plain => {
                let Some((idx, pos)) = mine.path else {
                    // Off-path nodes only owe the region checks, but C
                    // nodes must be on a path (condition (iv)).
                    return mine.region != Region::C;
                };
                if idx >= k {
                    return false;
                }
                let adj_s = view
                    .neighbors(c)
                    .iter()
                    .any(|&u| *view.node_label(u) == StMark::S);
                let adj_t = view
                    .neighbors(c)
                    .iter()
                    .any(|&u| *view.node_label(u) == StMark::T);
                // (ii) Exactly one predecessor and one successor.
                let mut preds: Vec<Region> = Vec::new();
                let mut succs: Vec<Region> = Vec::new();
                if adj_s && pos == 1 {
                    preds.push(Region::S); // s itself lies in S
                }
                if adj_t {
                    succs.push(Region::T); // t itself lies in T
                }
                for &(_, cu) in &nbrs {
                    if let Some((ui, upos)) = cu.path {
                        if ui == idx && upos == (pos + 2) % 3 {
                            preds.push(cu.region);
                        }
                        if ui == idx && upos == (pos + 1) % 3 {
                            succs.push(cu.region);
                        }
                    }
                }
                if preds.len() != 1 || succs.len() != 1 {
                    return false;
                }
                // (iv) C nodes sit at the S→T crossing.
                if mine.region == Region::C && (preds[0] != Region::S || succs[0] != Region::T) {
                    return false;
                }
                true
            }
        }
    }
}

impl StConnectivity {
    fn check_endpoint_indices(&self, indices: &[u64], k: u64) -> bool {
        match self.mode {
            PathIndexMode::Distinct => {
                let mut sorted = indices.to_vec();
                sorted.sort_unstable();
                sorted == (0..k).collect::<Vec<u64>>()
            }
            PathIndexMode::Colored => indices.len() as u64 == k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcp_core::evaluate;
    use lcp_core::harness::{
        adversarial_proof_search, check_completeness, check_soundness_exhaustive, Soundness,
    };
    use lcp_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn instance(g: lcp_graph::Graph, s: usize, t: usize) -> Instance<StMark> {
        let marks = StMark::mark(g.n(), s, t);
        Instance::with_node_data(g, marks)
    }

    #[test]
    fn cycle_has_connectivity_two() {
        let inst = instance(generators::cycle(8), 0, 4);
        let scheme = StConnectivity::general(2);
        assert!(scheme.holds(&inst));
        let proof = scheme.prove(&inst).unwrap();
        assert!(evaluate(&scheme, &inst, &proof).accepted());
    }

    #[test]
    fn complete_bipartite_same_side_connectivity() {
        // κ(0, 1) in K_{3,4} is 4.
        let inst = instance(generators::complete_bipartite(3, 4), 0, 1);
        let scheme = StConnectivity::general(4);
        assert!(scheme.holds(&inst));
        let proof = scheme.prove(&inst).unwrap();
        assert!(evaluate(&scheme, &inst, &proof).accepted());
    }

    #[test]
    fn grid_corners_planar_mode() {
        // Grids are planar; corner-to-corner connectivity is 2.
        for (r, c) in [(3usize, 3usize), (3, 4), (4, 4)] {
            let g = generators::grid(r, c);
            let inst = instance(g, 0, r * c - 1);
            let scheme = StConnectivity::planar(2);
            assert!(scheme.holds(&inst), "{r}x{c}");
            let proof = scheme.prove(&inst).unwrap();
            assert!(
                evaluate(&scheme, &inst, &proof).accepted(),
                "{r}x{c} planar mode"
            );
        }
    }

    #[test]
    fn planar_mode_size_is_constant_general_is_log_k() {
        // Measure on long even cycles (κ = 2) for planar mode...
        let planar_sizes: Vec<usize> = [8usize, 32, 128]
            .iter()
            .map(|&n| {
                let inst = instance(generators::cycle(n), 0, n / 2);
                StConnectivity::planar(2).prove(&inst).unwrap().size()
            })
            .collect();
        assert!(planar_sizes.windows(2).all(|w| w[0] == w[1]));
        // ...and on K_{k,k+1} same-side pairs for growing k in general mode.
        let mut general_sizes = Vec::new();
        for k in [2usize, 4, 8, 16] {
            let inst = instance(generators::complete_bipartite(2, k), 0, 1);
            let scheme = StConnectivity::general(k);
            assert!(scheme.holds(&inst));
            general_sizes.push(scheme.prove(&inst).unwrap().size());
        }
        assert!(
            general_sizes.windows(2).all(|w| w[0] <= w[1]),
            "index field grows with k: {general_sizes:?}"
        );
        assert!(general_sizes[3] > general_sizes[0]);
    }

    #[test]
    fn wrong_k_is_a_no_instance_both_ways() {
        let inst = instance(generators::cycle(8), 0, 4); // true κ = 2
        for k in [1usize, 3] {
            let scheme = StConnectivity::general(k);
            assert!(!scheme.holds(&inst), "k = {k}");
            assert!(scheme.prove(&inst).is_none(), "k = {k}");
        }
    }

    #[test]
    fn underclaiming_connectivity_rejected_exhaustively() {
        // C4 between s and t has κ = 2; claim k = 1 and try all proofs of
        // up to 4 bits per node on this 4-node instance.
        let inst = instance(generators::cycle(4), 0, 2);
        let scheme = StConnectivity::general(1);
        assert!(!scheme.holds(&inst));
        match check_soundness_exhaustive(&scheme, &lcp_core::engine::prepare(&scheme, &inst), 3)
            .unwrap()
        {
            Soundness::Holds(_) => {}
            Soundness::Violated(p) => panic!("κ=1 forged on C4 by {p:?}"),
        }
    }

    #[test]
    fn overclaiming_connectivity_resists_search() {
        // Path s–x–t has κ = 1; claim k = 2.
        let inst = instance(generators::path(5), 0, 4);
        let scheme = StConnectivity::general(2);
        assert!(!scheme.holds(&inst));
        let mut rng = StdRng::seed_from_u64(51);
        assert!(adversarial_proof_search(
            &scheme,
            &lcp_core::engine::prepare(&scheme, &inst),
            6,
            800,
            &mut rng
        )
        .is_none());
    }

    #[test]
    fn random_graphs_roundtrip() {
        let mut rng = StdRng::seed_from_u64(52);
        let mut done = 0;
        let mut instances_by_k: std::collections::BTreeMap<usize, Vec<Instance<StMark>>> =
            Default::default();
        for _ in 0..40 {
            let g = generators::random_connected(9, 6, &mut rng);
            if g.has_edge(0, 8) {
                continue;
            }
            let k = menger::local_vertex_connectivity(&g, 0, 8);
            if k >= 1 {
                instances_by_k.entry(k).or_default().push(instance(g, 0, 8));
                done += 1;
            }
        }
        assert!(done >= 10);
        for (k, instances) in instances_by_k {
            let scheme = StConnectivity::general(k);
            check_completeness(
                &scheme,
                &lcp_core::engine::prepare_sweep(&scheme, &instances),
            )
            .unwrap_or_else(|f| {
                panic!("k = {k}: {:?}", f.reason);
            });
        }
    }

    #[test]
    fn adjacent_endpoints_are_outside_the_promise() {
        let inst = instance(generators::complete(4), 0, 1);
        let scheme = StConnectivity::general(3);
        assert!(!scheme.holds(&inst));
        assert!(scheme.prove(&inst).is_none());
    }
}
