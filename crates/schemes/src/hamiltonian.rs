//! Hamiltonian cycles (§5.1, Table 1(b)): `Θ(log n)` on connected graphs.

use lcp_core::components::CountingTreeCert;
use lcp_core::{BitReader, BitWriter, Instance, Proof, ProofRef, Scheme, View};
use lcp_graph::traversal;

/// Hamiltonian-cycle verification: edges labelled `1` must form a cycle
/// through **all** nodes.
///
/// Certificate: a counting spanning tree (certifying `n`) plus a position
/// `0 ≤ p < n` per node along the claimed cycle. The root (the unique
/// tree root) carries position 0; every node checks that among its
/// *labelled* edges it has exactly one predecessor (position `p − 1 mod
/// n`) and one successor (`p + 1 mod n`), and that those are its only
/// labelled edges. Positions are distinct because the successor relation
/// is a perfect pairing that chains every node back to the unique root,
/// so the labels trace one simple cycle through all `n` nodes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HamiltonianCycle;

#[derive(Clone, Copy, Debug)]
struct HamCert {
    count: CountingTreeCert,
    pos: u64,
}

fn decode_ham(proof: ProofRef<'_>) -> Option<HamCert> {
    let mut r = BitReader::new(proof);
    let count = CountingTreeCert::decode(&mut r).ok()?;
    let pos = r.read_gamma().ok()?;
    r.is_exhausted().then_some(HamCert { count, pos })
}

/// Extracts the labelled cycle as an ordered node list, if the labels form
/// a single Hamiltonian cycle.
fn labelled_hamiltonian_cycle(inst: &Instance) -> Option<Vec<usize>> {
    let g = inst.graph();
    let n = g.n();
    if n < 3 {
        return None;
    }
    let labelled: Vec<Vec<usize>> = g
        .nodes()
        .map(|v| {
            g.neighbors(v)
                .iter()
                .copied()
                .filter(|&u| inst.edge_label(v, u).is_some())
                .collect()
        })
        .collect();
    if labelled.iter().any(|l| l.len() != 2) {
        return None;
    }
    // Walk the 2-regular labelled subgraph from node 0.
    let mut cycle = vec![0usize];
    let mut prev = usize::MAX;
    let mut cur = 0usize;
    loop {
        let next = *labelled[cur].iter().find(|&&u| u != prev)?;
        if next == 0 {
            break;
        }
        cycle.push(next);
        prev = cur;
        cur = next;
        if cycle.len() > n {
            return None;
        }
    }
    (cycle.len() == n).then_some(cycle)
}

impl Scheme for HamiltonianCycle {
    type Node = ();
    type Edge = ();

    fn name(&self) -> String {
        "hamiltonian-cycle".into()
    }

    fn radius(&self) -> usize {
        1
    }

    fn holds(&self, inst: &Instance) -> bool {
        traversal::is_connected(inst.graph()) && labelled_hamiltonian_cycle(inst).is_some()
    }

    fn prove(&self, inst: &Instance) -> Option<Proof> {
        if !traversal::is_connected(inst.graph()) {
            return None;
        }
        let cycle = labelled_hamiltonian_cycle(inst)?;
        let g = inst.graph();
        let tree = lcp_graph::spanning::bfs_spanning_tree(g, cycle[0]);
        let counts = CountingTreeCert::prove(g, &tree);
        let mut pos = vec![0u64; g.n()];
        for (i, &v) in cycle.iter().enumerate() {
            pos[v] = i as u64;
        }
        Some(Proof::from_fn(g.n(), |v| {
            let mut w = BitWriter::new();
            counts[v].encode(&mut w);
            w.write_gamma(pos[v]);
            w.finish()
        }))
    }

    fn verify(&self, view: &View) -> bool {
        let certs = |u: usize| decode_ham(view.proof(u));
        if !CountingTreeCert::verify_at_center(view, |u| certs(u).map(|h| h.count)) {
            return false;
        }
        let c = view.center();
        let mine = certs(c).expect("decoded by the counting check");
        let n = mine.count.n_claim;
        if n < 3 || mine.pos >= n {
            return false;
        }
        // Position 0 is reserved for the unique tree root.
        if (mine.pos == 0) != (mine.count.tree.dist == 0) {
            return false;
        }
        let prev = (mine.pos + n - 1) % n;
        let next = (mine.pos + 1) % n;
        let mut preds = 0;
        let mut succs = 0;
        let mut labelled = 0;
        for &u in view.neighbors(c) {
            let on_edge = view.edge_label(c, u).is_some();
            if !on_edge {
                continue;
            }
            labelled += 1;
            let Some(cu) = certs(u) else {
                return false;
            };
            if cu.pos == prev {
                preds += 1;
            }
            if cu.pos == next {
                succs += 1;
            }
        }
        labelled == 2 && preds == 1 && succs == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcp_core::evaluate;
    use lcp_core::harness::{
        adversarial_proof_search, check_completeness, check_soundness_exhaustive, classify_growth,
        measure_sizes, GrowthClass, Soundness,
    };
    use lcp_graph::{generators, hamilton};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ham_instance(g: lcp_graph::Graph) -> Instance {
        let cycle = hamilton::hamiltonian_cycle(&g).expect("hamiltonian input");
        let edges: Vec<(usize, usize)> = (0..cycle.len())
            .map(|i| (cycle[i], cycle[(i + 1) % cycle.len()]))
            .collect();
        Instance::unlabeled(g).with_edge_set(edges)
    }

    #[test]
    fn hamiltonian_solutions_certified() {
        let instances: Vec<Instance> = vec![
            ham_instance(generators::cycle(7)),
            ham_instance(generators::complete(6)),
            ham_instance(generators::complete_bipartite(3, 3)),
            ham_instance(generators::grid(3, 4)),
        ];
        check_completeness(
            &HamiltonianCycle,
            &lcp_core::engine::prepare_sweep(&HamiltonianCycle, &instances),
        )
        .unwrap();
    }

    #[test]
    fn proof_size_logarithmic() {
        let instances: Vec<Instance> = [8usize, 16, 32, 64, 128, 256]
            .iter()
            .map(|&n| ham_instance(generators::cycle(n)))
            .collect();
        let points = measure_sizes(
            &HamiltonianCycle,
            &lcp_core::engine::prepare_sweep(&HamiltonianCycle, &instances),
        );
        assert_eq!(classify_growth(&points), GrowthClass::Logarithmic);
    }

    #[test]
    fn two_disjoint_cycles_rejected() {
        // K6 contains two disjoint triangles: labelled together they are
        // 2-regular but not a single Hamiltonian cycle.
        let g = generators::complete(6);
        let inst =
            Instance::unlabeled(g).with_edge_set([(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        assert!(!HamiltonianCycle.holds(&inst));
        let mut rng = StdRng::seed_from_u64(61);
        assert!(adversarial_proof_search(
            &HamiltonianCycle,
            &lcp_core::engine::prepare(&HamiltonianCycle, &inst),
            10,
            800,
            &mut rng
        )
        .is_none());
    }

    #[test]
    fn short_cycle_rejected_exhaustively() {
        // C4 plus a chord-attached pendant… simplest: K4 with a labelled
        // triangle (covers 3 of 4 nodes).
        let g = generators::complete(4);
        let inst = Instance::unlabeled(g).with_edge_set([(0, 1), (1, 2), (0, 2)]);
        assert!(!HamiltonianCycle.holds(&inst));
        match check_soundness_exhaustive(
            &HamiltonianCycle,
            &lcp_core::engine::prepare(&HamiltonianCycle, &inst),
            2,
        )
        .unwrap()
        {
            Soundness::Holds(_) => {}
            Soundness::Violated(p) => panic!("triangle certified Hamiltonian by {p:?}"),
        }
    }

    #[test]
    fn honest_proof_tampering_detected() {
        let inst = ham_instance(generators::cycle(6));
        let proof = HamiltonianCycle.prove(&inst).unwrap();
        assert!(evaluate(&HamiltonianCycle, &inst, &proof).accepted());
        // Swap two nodes' position fields.
        let mut bad = proof.clone();
        let p2 = proof.get(2);
        bad.set(2, proof.get(4));
        bad.set(4, p2);
        assert!(!evaluate(&HamiltonianCycle, &inst, &bad).accepted());
    }

    #[test]
    fn non_hamiltonian_labelling_is_no_instance() {
        let inst = Instance::unlabeled(generators::path(5));
        assert!(!HamiltonianCycle.holds(&inst));
        assert!(HamiltonianCycle.prove(&inst).is_none());
    }
}
