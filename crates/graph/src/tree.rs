//! Trees: recognition, centres, AHU canonical codes, and exhaustive
//! rooted-tree enumeration (OEIS A000081).
//!
//! §6.2 of the paper enumerates rooted trees with `k` nodes (`log |F_k| =
//! Θ(k)`, citing A000081) and joins pairs of them; this module provides
//! that family via the Beyer–Hedetniemi level-sequence successor
//! algorithm, plus the AHU code used to compare rooted trees.

use crate::{Graph, GraphError, NodeId};

/// Whether `g` is a tree (connected and `m = n − 1`); the empty graph is
/// not a tree.
pub fn is_tree(g: &Graph) -> bool {
    g.n() > 0 && g.m() == g.n() - 1 && crate::traversal::is_connected(g)
}

/// Whether `g` is a forest (every component a tree).
pub fn is_forest(g: &Graph) -> bool {
    let comps = crate::traversal::component_count(g);
    g.m() + comps == g.n()
}

/// The centre(s) of a tree: one or two nodes, found by repeatedly peeling
/// leaves.
///
/// # Panics
///
/// Panics if `g` is not a tree.
pub fn tree_centers(g: &Graph) -> Vec<usize> {
    assert!(is_tree(g), "tree_centers requires a tree");
    let n = g.n();
    if n <= 2 {
        return (0..n).collect();
    }
    let mut degree: Vec<usize> = g.nodes().map(|u| g.degree(u)).collect();
    let mut layer: Vec<usize> = g.nodes().filter(|&u| degree[u] == 1).collect();
    let mut remaining = n;
    while remaining > 2 {
        remaining -= layer.len();
        let mut next = Vec::new();
        for &u in &layer {
            for &v in g.neighbors(u) {
                if degree[v] > 1 {
                    degree[v] -= 1;
                    if degree[v] == 1 {
                        next.push(v);
                    }
                }
            }
            degree[u] = 0;
        }
        layer = next;
    }
    layer.sort_unstable();
    layer
}

/// The AHU canonical code of the tree `g` rooted at `root`: a
/// parenthesization string that is equal for two rooted trees **iff** they
/// are isomorphic as rooted trees.
///
/// # Panics
///
/// Panics if `g` is not a tree or `root` is out of range.
pub fn ahu_code(g: &Graph, root: usize) -> String {
    assert!(is_tree(g), "ahu_code requires a tree");
    assert!(root < g.n(), "root out of range");
    fn rec(g: &Graph, u: usize, parent: Option<usize>) -> String {
        let mut child_codes: Vec<String> = g
            .neighbors(u)
            .iter()
            .filter(|&&v| Some(v) != parent)
            .map(|&v| rec(g, v, Some(u)))
            .collect();
        child_codes.sort();
        format!("({})", child_codes.concat())
    }
    rec(g, root, None)
}

/// The AHU code of an *unrooted* tree: root at the centre (for bicentral
/// trees, the lexicographically smaller of the two centre codes).
///
/// Equal for two trees **iff** they are isomorphic.
///
/// # Panics
///
/// Panics if `g` is not a tree.
pub fn unrooted_ahu_code(g: &Graph) -> String {
    tree_centers(g)
        .into_iter()
        .map(|c| ahu_code(g, c))
        .min()
        .expect("trees have at least one centre")
}

/// A rooted tree represented by its level sequence: `level[i]` is the
/// depth (root = 1) of the `i`-th node in preorder.
///
/// This is the representation enumerated by [`rooted_trees`].
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LevelSequence(pub Vec<usize>);

impl LevelSequence {
    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.0.len()
    }

    /// Materializes the level sequence as a [`Graph`] plus the root index.
    ///
    /// Nodes get identifiers `offset+1 ..= offset+n` in preorder, so the
    /// root always carries identifier `offset + 1` — this is the "rooted
    /// canonical copy" convention the §6.2 join construction relies on.
    pub fn to_graph(&self, offset: u64) -> (Graph, usize) {
        let n = self.n();
        let mut g = Graph::from_ids((1..=n as u64).map(|v| NodeId(offset + v)))
            .expect("contiguous ids are unique");
        // Parent of node i = nearest previous node with level one less.
        let mut stack: Vec<usize> = Vec::new(); // indices forming current path
        for i in 0..n {
            let level = self.0[i];
            stack.truncate(level - 1);
            if let Some(&p) = stack.last() {
                g.add_edge(p, i).expect("preorder edges are fresh");
            }
            stack.push(i);
        }
        (g, 0)
    }
}

/// Enumerates **all** rooted trees on `n` nodes (up to rooted isomorphism)
/// as level sequences, via the Beyer–Hedetniemi successor algorithm.
///
/// Counts follow OEIS A000081: 1, 1, 2, 4, 9, 20, 48, 115, …
///
/// # Errors
///
/// Returns an error for `n = 0` or `n > 18` (the count explodes past any
/// experimental use; 18 already gives 10,599,568 trees).
pub fn rooted_trees(n: usize) -> Result<Vec<LevelSequence>, GraphError> {
    if n == 0 || n > 18 {
        return Err(GraphError::InvalidConstruction(format!(
            "rooted tree enumeration supports 1..=18 nodes, got {n}"
        )));
    }
    let mut out = Vec::new();
    // Start from the path: levels 1, 2, …, n.
    let mut level: Vec<usize> = (1..=n).collect();
    loop {
        out.push(LevelSequence(level.clone()));
        // Find the last position with level > 2.
        let Some(p) = (0..n).rev().find(|&i| level[i] > 2) else {
            break;
        };
        // q: last position before p with level[q] = level[p] − 1.
        let q = (0..p)
            .rev()
            .find(|&i| level[i] == level[p] - 1)
            .expect("level sequences descend by 1 from the root");
        // Copy the block starting at q over the tail.
        for i in p..n {
            level[i] = level[i - (p - q)];
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use std::collections::HashSet;

    #[test]
    fn tree_recognition() {
        assert!(is_tree(&generators::path(5)));
        assert!(is_tree(&generators::star(4)));
        assert!(!is_tree(&generators::cycle(4)));
        assert!(!is_tree(&Graph::new()));
        let forest = crate::ops::disjoint_union(
            &generators::path(3),
            &crate::ops::shift_ids(&generators::path(2), 10),
        )
        .unwrap();
        assert!(!is_tree(&forest));
        assert!(is_forest(&forest));
        assert!(!is_forest(&generators::cycle(3)));
    }

    #[test]
    fn centers_of_paths() {
        assert_eq!(tree_centers(&generators::path(5)), vec![2]);
        assert_eq!(tree_centers(&generators::path(6)), vec![2, 3]);
        assert_eq!(tree_centers(&generators::path(1)), vec![0]);
        assert_eq!(tree_centers(&generators::path(2)), vec![0, 1]);
    }

    #[test]
    fn center_of_star_is_hub() {
        assert_eq!(tree_centers(&generators::star(5)), vec![0]);
    }

    #[test]
    fn ahu_distinguishes_rooted_shapes() {
        let p3 = generators::path(3);
        // Rooted at the middle vs at an end: different rooted trees.
        assert_ne!(ahu_code(&p3, 1), ahu_code(&p3, 0));
        // Rooted at either end: same rooted tree.
        assert_eq!(ahu_code(&p3, 0), ahu_code(&p3, 2));
    }

    #[test]
    fn unrooted_ahu_is_isomorphism_invariant() {
        let g = generators::complete_binary_tree(3);
        let h = g.relabel(|id| NodeId(1000 - id.0)).unwrap();
        assert_eq!(unrooted_ahu_code(&g), unrooted_ahu_code(&h));
        assert_ne!(
            unrooted_ahu_code(&generators::path(4)),
            unrooted_ahu_code(&generators::star(3))
        );
    }

    #[test]
    fn rooted_tree_counts_match_a000081() {
        let expected = [1usize, 1, 2, 4, 9, 20, 48, 115, 286];
        for (i, &count) in expected.iter().enumerate() {
            let n = i + 1;
            assert_eq!(rooted_trees(n).unwrap().len(), count, "n = {n}");
        }
    }

    #[test]
    fn enumerated_trees_are_distinct_rooted_trees() {
        for n in 1..=7 {
            let seqs = rooted_trees(n).unwrap();
            let mut codes = HashSet::new();
            for seq in &seqs {
                let (g, root) = seq.to_graph(0);
                assert!(is_tree(&g), "level sequence must build a tree");
                assert_eq!(g.n(), n);
                assert!(codes.insert(ahu_code(&g, root)), "duplicate rooted tree");
            }
        }
    }

    #[test]
    fn level_sequence_graph_has_root_id_offset_plus_one() {
        let seqs = rooted_trees(4).unwrap();
        let (g, root) = seqs[0].to_graph(100);
        assert_eq!(root, 0);
        assert_eq!(g.id(root), NodeId(101));
    }

    #[test]
    fn enumeration_bounds_checked() {
        assert!(rooted_trees(0).is_err());
        assert!(rooted_trees(19).is_err());
    }
}
