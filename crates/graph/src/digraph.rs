//! Simple directed graphs, used for the directed `s`–`t` (un)reachability
//! schemes of §4.1.

use crate::{GraphError, NodeId};
use std::collections::HashMap;
use std::fmt;

/// A finite, simple, directed graph with explicit [`NodeId`] identifiers.
///
/// Mirrors [`crate::Graph`] but keeps separate out- and in-adjacency lists.
/// Anti-parallel arcs (`u → v` and `v → u`) are allowed; parallel arcs and
/// self-loops are not.
///
/// ```
/// use lcp_graph::{DiGraph, NodeId};
///
/// # fn main() -> Result<(), lcp_graph::GraphError> {
/// let mut g = DiGraph::from_ids((1..=3).map(NodeId))?;
/// g.add_arc(0, 1)?;
/// g.add_arc(1, 2)?;
/// assert!(g.has_arc(0, 1));
/// assert!(!g.has_arc(1, 0));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Default, PartialEq, Eq)]
pub struct DiGraph {
    ids: Vec<NodeId>,
    index: HashMap<NodeId, usize>,
    out: Vec<Vec<usize>>,
    inn: Vec<Vec<usize>>,
    m: usize,
}

impl DiGraph {
    /// Creates an empty directed graph.
    pub fn new() -> Self {
        DiGraph::default()
    }

    /// Creates a directed graph with the given identifiers and no arcs.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DuplicateNode`] if an identifier repeats.
    pub fn from_ids<I>(ids: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = NodeId>,
    {
        let mut g = DiGraph::new();
        for id in ids {
            g.add_node(id)?;
        }
        Ok(g)
    }

    /// Adds a node and returns its index.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DuplicateNode`] if the identifier is taken.
    pub fn add_node(&mut self, id: NodeId) -> Result<usize, GraphError> {
        if self.index.contains_key(&id) {
            return Err(GraphError::DuplicateNode(id));
        }
        let idx = self.ids.len();
        self.ids.push(id);
        self.index.insert(id, idx);
        self.out.push(Vec::new());
        self.inn.push(Vec::new());
        Ok(idx)
    }

    /// Adds the arc `u → v` by internal index.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range indices, self-loops, and duplicate arcs.
    pub fn add_arc(&mut self, u: usize, v: usize) -> Result<(), GraphError> {
        if u >= self.n() {
            return Err(GraphError::IndexOutOfRange(u));
        }
        if v >= self.n() {
            return Err(GraphError::IndexOutOfRange(v));
        }
        if u == v {
            return Err(GraphError::SelfLoop(self.ids[u]));
        }
        match self.out[u].binary_search(&v) {
            Ok(_) => return Err(GraphError::DuplicateEdge(self.ids[u], self.ids[v])),
            Err(pos) => self.out[u].insert(pos, v),
        }
        let pos = self.inn[v]
            .binary_search(&u)
            .expect_err("arc lists must stay consistent");
        self.inn[v].insert(pos, u);
        self.m += 1;
        Ok(())
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.ids.len()
    }

    /// Number of arcs.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Identifier of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn id(&self, u: usize) -> NodeId {
        self.ids[u]
    }

    /// All identifiers in index order.
    pub fn ids(&self) -> &[NodeId] {
        &self.ids
    }

    /// Index of the node carrying `id`, if present.
    pub fn index_of(&self, id: NodeId) -> Option<usize> {
        self.index.get(&id).copied()
    }

    /// Sorted out-neighbours of `u` (targets of arcs `u → ·`).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn out_neighbors(&self, u: usize) -> &[usize] {
        &self.out[u]
    }

    /// Sorted in-neighbours of `u` (sources of arcs `· → u`).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn in_neighbors(&self, u: usize) -> &[usize] {
        &self.inn[u]
    }

    /// Whether the arc `u → v` is present.
    pub fn has_arc(&self, u: usize, v: usize) -> bool {
        u < self.n() && v < self.n() && self.out[u].binary_search(&v).is_ok()
    }

    /// Iterates over all node indices.
    pub fn nodes(&self) -> std::ops::Range<usize> {
        0..self.n()
    }

    /// All arcs as `(source, target)` index pairs, in source order.
    pub fn arcs(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.m);
        for u in self.nodes() {
            for &v in &self.out[u] {
                out.push((u, v));
            }
        }
        out
    }

    /// Nodes reachable from `s` by directed paths (including `s`).
    pub fn reachable_from(&self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.n()];
        if s >= self.n() {
            return seen;
        }
        let mut queue = std::collections::VecDeque::from([s]);
        seen[s] = true;
        while let Some(u) = queue.pop_front() {
            for &v in &self.out[u] {
                if !seen[v] {
                    seen[v] = true;
                    queue.push_back(v);
                }
            }
        }
        seen
    }

    /// Forgets arc directions, producing the underlying undirected graph.
    ///
    /// Anti-parallel arc pairs collapse into a single edge.
    pub fn to_undirected(&self) -> crate::Graph {
        let mut g = crate::Graph::from_ids(self.ids.iter().copied()).expect("ids unique");
        for (u, v) in self.arcs() {
            if !g.has_edge(u, v) {
                g.add_edge(u, v).expect("indices valid");
            }
        }
        g
    }
}

impl fmt::Debug for DiGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DiGraph(n={}, m={}; ", self.n(), self.m())?;
        let arcs: Vec<String> = self
            .arcs()
            .into_iter()
            .map(|(u, v)| format!("{}->{}", self.ids[u], self.ids[v]))
            .collect();
        write!(f, "[{}])", arcs.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_path() -> DiGraph {
        let mut g = DiGraph::from_ids((1..=3).map(NodeId)).unwrap();
        g.add_arc(0, 1).unwrap();
        g.add_arc(1, 2).unwrap();
        g
    }

    #[test]
    fn arcs_are_directed() {
        let g = two_path();
        assert!(g.has_arc(0, 1));
        assert!(!g.has_arc(1, 0));
        assert_eq!(g.out_neighbors(1), &[2]);
        assert_eq!(g.in_neighbors(1), &[0]);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn antiparallel_arcs_allowed() {
        let mut g = DiGraph::from_ids((1..=2).map(NodeId)).unwrap();
        g.add_arc(0, 1).unwrap();
        g.add_arc(1, 0).unwrap();
        assert_eq!(g.m(), 2);
        // ... but an exact duplicate is not.
        assert!(g.add_arc(0, 1).is_err());
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = DiGraph::from_ids([NodeId(1)]).unwrap();
        assert_eq!(g.add_arc(0, 0), Err(GraphError::SelfLoop(NodeId(1))));
    }

    #[test]
    fn reachability_follows_arc_direction() {
        let g = two_path();
        assert_eq!(g.reachable_from(0), vec![true, true, true]);
        assert_eq!(g.reachable_from(2), vec![false, false, true]);
    }

    #[test]
    fn to_undirected_collapses_antiparallel() {
        let mut g = DiGraph::from_ids((1..=3).map(NodeId)).unwrap();
        g.add_arc(0, 1).unwrap();
        g.add_arc(1, 0).unwrap();
        g.add_arc(1, 2).unwrap();
        let u = g.to_undirected();
        assert_eq!(u.m(), 2);
        assert!(u.has_edge(0, 1));
        assert!(u.has_edge(1, 2));
    }

    #[test]
    fn arcs_listing_is_deterministic() {
        let g = two_path();
        assert_eq!(g.arcs(), vec![(0, 1), (1, 2)]);
    }
}
