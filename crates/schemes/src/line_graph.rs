//! Line graphs: `LCP(0)` via Beineke's forbidden subgraphs (§1.1).

use lcp_core::{Instance, Proof, Scheme, View};
use lcp_graph::line_graph as lg;

/// The `LCP(0)` scheme for "is a line graph": no proof; a radius-2
/// verifier rejects iff one of Beineke's nine forbidden induced subgraphs
/// appears in its view.
///
/// Soundness and completeness rest on two facts established (and tested)
/// in `lcp_graph::line_graph`: a graph is a line graph iff it contains no
/// forbidden induced subgraph, and every forbidden graph has radius ≤ 2,
/// so each occurrence lies inside the radius-2 view of one of its nodes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LineGraph;

impl Scheme for LineGraph {
    type Node = ();
    type Edge = ();

    fn name(&self) -> String {
        "line-graph".into()
    }

    fn radius(&self) -> usize {
        2
    }

    fn holds(&self, inst: &Instance) -> bool {
        lg::is_line_graph(inst.graph())
    }

    fn prove(&self, inst: &Instance) -> Option<Proof> {
        self.holds(inst).then(|| Proof::empty(inst.n()))
    }

    fn verify(&self, view: &View) -> bool {
        let host = view.to_graph();
        lg::beineke_graphs()
            .iter()
            .all(|h| lg::find_induced_subgraph(&host, h).is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcp_core::evaluate;
    use lcp_core::harness::check_completeness;
    use lcp_graph::generators;

    #[test]
    fn line_graphs_accepted_without_proof() {
        let instances: Vec<Instance> = vec![
            Instance::unlabeled(generators::path(6)),
            Instance::unlabeled(generators::cycle(7)),
            Instance::unlabeled(lg::line_graph(&generators::star(4))),
            Instance::unlabeled(lg::line_graph(&generators::complete(4))),
            Instance::unlabeled(lg::line_graph(&generators::grid(2, 3))),
        ];
        let sizes = check_completeness(
            &LineGraph,
            &lcp_core::engine::prepare_sweep(&LineGraph, &instances),
        )
        .unwrap();
        assert!(sizes.iter().all(|&s| s == 0));
    }

    #[test]
    fn claw_rejected_at_its_centre() {
        let inst = Instance::unlabeled(lg::claw());
        let verdict = evaluate(&LineGraph, &inst, &Proof::empty(4));
        assert!(!verdict.accepted());
        // The hub (index 0) sees the whole claw.
        assert!(verdict.rejecting().contains(&0));
    }

    #[test]
    fn k23_rejected() {
        let inst = Instance::unlabeled(generators::complete_bipartite(2, 3));
        assert!(!LineGraph.holds(&inst));
        assert!(!evaluate(&LineGraph, &inst, &Proof::empty(5)).accepted());
    }

    #[test]
    fn big_claw_inside_larger_graph_detected() {
        // A path with a claw grafted in the middle.
        let mut g = generators::path(7);
        let extra1 = g.add_node(lcp_graph::NodeId(100)).unwrap();
        let extra2 = g.add_node(lcp_graph::NodeId(101)).unwrap();
        g.add_edge(3, extra1).unwrap();
        g.add_edge(3, extra2).unwrap();
        let inst = Instance::unlabeled(g);
        assert!(!LineGraph.holds(&inst));
        assert!(!evaluate(&LineGraph, &inst, &Proof::empty(9)).accepted());
    }
}
