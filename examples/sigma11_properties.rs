//! Monadic Σ¹₁ properties compiled to LogLCP schemes (§7.5).
//!
//! Write a graph property as an existential monadic second-order sentence
//! in local normal form, supply a witness finder, and get a proof
//! labelling scheme with `k + O(log n)` bits per node for free.
//!
//! ```sh
//! cargo run --example sigma11_properties
//! ```

use lcp::core::{evaluate, Instance, Scheme};
use lcp::graph::generators;
use lcp::logic::{formulas, Sigma11Scheme};

fn main() {
    // 3-colourability — the paper's flagship NP-complete Σ¹₁ property.
    let three_col = Sigma11Scheme::new(formulas::k_colorable(3), |g| {
        formulas::k_colorable_witness(g, 3)
    });
    let grid = Instance::unlabeled(generators::grid(4, 6));
    let proof = three_col.prove(&grid).expect("grids are 2-colourable");
    println!(
        "3-colourability on a 4×6 grid: {} bits/node (3 relation bits + tree certificate)",
        proof.size()
    );
    assert!(evaluate(&three_col, &grid, &proof).accepted());

    let k4 = Instance::unlabeled(generators::complete(4));
    assert!(three_col.prove(&k4).is_none());
    println!("K4: prover refuses (not 3-colourable) ✓");

    // Perfect codes: C6 has one, C5 does not.
    let pc = Sigma11Scheme::new(formulas::perfect_code(), formulas::perfect_code_witness);
    let c6 = Instance::unlabeled(generators::cycle(6));
    let proof = pc.prove(&c6).expect("C6 has a perfect code");
    println!("perfect code on C6: {} bits/node", proof.size());
    assert!(evaluate(&pc, &c6, &proof).accepted());
    assert!(pc
        .prove(&Instance::unlabeled(generators::cycle(5)))
        .is_none());
    println!("C5: prover refuses (no perfect code) ✓");

    // Triangle containment, where the ∃x witness matters: the spanning
    // tree in the proof points every node at the triangle corner.
    let tri = Sigma11Scheme::new(formulas::has_triangle(), formulas::has_triangle_witness);
    let mut g = generators::cycle(12);
    let (u, v) = (2, 4);
    g.add_edge(u, v).expect("chord creates a triangle");
    let inst = Instance::unlabeled(g);
    let proof = tri.prove(&inst).expect("triangle exists");
    println!("triangle witness on C12+chord: {} bits/node", proof.size());
    assert!(evaluate(&tri, &inst, &proof).accepted());

    let c12 = Instance::unlabeled(generators::cycle(12));
    assert!(tri.prove(&c12).is_none());
    println!("plain C12: prover refuses (triangle-free) ✓");
}
