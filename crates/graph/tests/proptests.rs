//! Property-based tests for the graph substrate: classical invariants
//! checked against brute force on random instances.

use lcp_graph::{
    coloring, enumerate, generators, iso, line_graph, matching, menger, ops, spanning, traversal,
    tree, Graph, NodeId,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn seeded_graph() -> impl Strategy<Value = Graph> {
    (3usize..12, 0usize..14, any::<u64>()).prop_map(|(n, extra, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        generators::random_connected(n, extra, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn handshake_lemma(g in seeded_graph()) {
        let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.m());
    }

    #[test]
    fn bfs_distances_satisfy_triangle_inequality_on_edges(g in seeded_graph()) {
        let d = traversal::bfs_distances(&g, 0);
        for (u, v) in g.edges() {
            let (du, dv) = (d[u].unwrap(), d[v].unwrap());
            prop_assert!(du.abs_diff(dv) <= 1, "edge ({u},{v}) jumps distance");
        }
    }

    #[test]
    fn spanning_tree_has_n_minus_one_edges_and_spans(g in seeded_graph()) {
        let t = spanning::bfs_spanning_tree(&g, 0);
        prop_assert_eq!(t.size(), g.n());
        let edges = t.edges();
        prop_assert_eq!(edges.len(), g.n() - 1);
        prop_assert!(spanning::is_spanning_tree(&g, &edges).unwrap());
        prop_assert_eq!(t.subtree_sizes()[t.root()], g.n());
    }

    #[test]
    fn bipartition_agrees_with_odd_cycle_search(g in seeded_graph()) {
        match traversal::bipartition(&g) {
            Some(colors) => {
                prop_assert!(g.edges().all(|(u, v)| colors[u] != colors[v]));
                prop_assert_eq!(traversal::find_odd_cycle(&g), None);
            }
            None => {
                let cyc = traversal::find_odd_cycle(&g).expect("non-bipartite has odd cycle");
                prop_assert_eq!(cyc.len() % 2, 1);
            }
        }
    }

    #[test]
    fn menger_paths_equal_bruteforce_separator(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_connected(8, 5, &mut rng);
        let (s, t) = (0, 7);
        prop_assume!(!g.has_edge(s, t));
        let cert = menger::menger_certificate(&g, s, t);
        let brute = menger::min_separator_bruteforce(&g, s, t).unwrap();
        prop_assert_eq!(cert.paths.len(), brute);
        prop_assert_eq!(cert.separator.len(), brute);
    }

    #[test]
    fn kuhn_equals_bruteforce_matching(seed in any::<u64>(), a in 2usize..6, b in 2usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_bipartite(a, b, 0.5, &mut rng);
        let side = traversal::bipartition(&g).unwrap();
        let m = matching::maximum_bipartite_matching(&g, &side);
        prop_assert_eq!(m.size(), matching::maximum_matching_bruteforce(&g));
    }

    #[test]
    fn chromatic_number_bounds(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp(8, 0.4, &mut rng);
        let chi = coloring::chromatic_number(&g);
        // Bounds: clique-free lower bound via edges, greedy upper bound.
        if g.m() > 0 {
            prop_assert!(chi >= 2);
        }
        prop_assert!(chi <= g.max_degree() + 1);
        if chi > 0 {
            let c = coloring::k_coloring(&g, chi).expect("chi is achievable");
            prop_assert!(coloring::is_proper_coloring(&g, &c));
        }
    }

    #[test]
    fn line_graph_of_graph_is_line_graph(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp(6, 0.45, &mut rng);
        let lg = line_graph::line_graph(&g);
        prop_assert!(line_graph::is_line_graph(&lg));
        prop_assert!(line_graph::is_line_graph_beineke(&lg));
        // |V(L(G))| = m, and degree sums follow Whitney's formula.
        prop_assert_eq!(lg.n(), g.m());
    }

    #[test]
    fn canonical_form_identifies_relabelings(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp(7, 0.4, &mut rng);
        let h = g.relabel(|id| NodeId(id.0 * 17 + 3)).unwrap();
        prop_assert!(iso::is_isomorphic(&g, &h).unwrap());
        prop_assert_eq!(
            iso::canonical_form(&g).unwrap(),
            iso::canonical_form(&h).unwrap()
        );
    }

    #[test]
    fn unrooted_ahu_is_a_complete_tree_invariant(seed in any::<u64>(), n in 2usize..10) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t1 = generators::random_tree(n, &mut rng);
        let t2 = generators::random_tree(n, &mut rng);
        let same_code = tree::unrooted_ahu_code(&t1) == tree::unrooted_ahu_code(&t2);
        let isomorphic = iso::is_isomorphic(&t1, &t2).unwrap();
        prop_assert_eq!(same_code, isomorphic);
    }

    #[test]
    fn disjoint_union_preserves_counts(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = generators::random_connected(5, 3, &mut rng);
        let b = ops::shift_ids(&generators::random_connected(4, 2, &mut rng), 100);
        let u = ops::disjoint_union(&a, &b).unwrap();
        prop_assert_eq!(u.n(), a.n() + b.n());
        prop_assert_eq!(u.m(), a.m() + b.m());
        prop_assert_eq!(traversal::component_count(&u), 2);
    }

    #[test]
    fn dfs_intervals_nest_or_are_disjoint(g in seeded_graph()) {
        let t = traversal::dfs_times(&g, 0);
        for u in g.nodes() {
            for v in g.nodes() {
                if u == v { continue; }
                let (xu, yu) = (t.discovery[u], t.finish[u]);
                let (xv, yv) = (t.discovery[v], t.finish[v]);
                let nested = (xu < xv && yv < yu) || (xv < xu && yu < yv);
                let disjoint = yu < xv || yv < xu;
                prop_assert!(nested || disjoint, "intervals cross at ({u},{v})");
            }
        }
    }

    #[test]
    fn sampled_asymmetric_graphs_are_asymmetric(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sample = enumerate::sample_asymmetric_connected(7, 3, 2000, &mut rng).unwrap();
        for g in sample {
            prop_assert!(!iso::is_symmetric(&g));
            prop_assert!(traversal::is_connected(&g));
        }
    }
}
