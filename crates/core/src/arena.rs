//! Flat, word-packed proof storage: one allocation for all nodes' bits.
//!
//! The LCP hot paths — the exhaustive proof odometer, adversarial
//! bit-flip search, tamper probing — walk through millions of candidate
//! proofs that differ from their predecessor at a single node. Storing a
//! proof as `Vec<BitString>` (one heap allocation per node) makes every
//! candidate pay allocator traffic; a [`ProofArena`] instead packs every
//! node's bits into one shared `Vec<u64>` with per-node `(offset, len,
//! capacity)` slots, so
//!
//! * reading node `v`'s bits is a bounds-checked slice
//!   ([`ProofArena::get`] returns a borrowed [`ProofRef`], no copy);
//! * overwriting node `v` within its reserved capacity is a word-level
//!   copy ([`ProofArena::set`], zero allocations);
//! * flipping a single bit is one XOR ([`ProofArena::flip`]).
//!
//! Slots are word-aligned (offsets are in whole `u64`s), so every write
//! is a straight word copy; a slot whose new value outgrows its
//! capacity is relocated to the end of the arena, leaving its old words
//! as dead slack (bounded by the total volume of over-capacity writes;
//! rebuild via [`ProofArena::from_refs`] to reclaim it). Search loops
//! preallocate capacity ([`ProofArena::with_capacity`]) and therefore
//! never allocate per candidate — the property the engine's
//! allocation-probe test pins.
#![deny(missing_docs)]

use crate::bits::{words_for, AsBits, BitString, ProofRef};
use std::fmt;

/// Per-node slot: where in the word pool the node's bits live.
#[derive(Clone, Copy, Debug)]
struct Slot {
    /// Word offset into [`ProofArena::words`].
    off: u32,
    /// Logical length in bits.
    len: u32,
    /// Reserved capacity in whole words.
    cap_words: u32,
}

/// Word-packed storage for one proof: every node's bit string in a
/// single `Vec<u64>`, addressed through per-node slots.
///
/// This is the representation behind [`crate::Proof`]; the harness's
/// search loops mutate one preallocated arena in place instead of
/// cloning per-node [`BitString`]s.
///
/// ```
/// use lcp_core::{AsBits, BitString, ProofArena};
///
/// let mut a = ProofArena::with_capacity(3, 70);
/// a.set(1, BitString::from_bits((0..70).map(|i| i % 3 == 0)).as_bits());
/// assert_eq!(a.get(1).len(), 70);
/// assert_eq!(a.get(1).get(69), Some(true));
/// assert!(a.get(0).is_empty());
/// a.flip(1, 69);
/// assert_eq!(a.get(1).get(69), Some(false));
/// ```
#[derive(Clone, Default)]
pub struct ProofArena {
    words: Vec<u64>,
    slots: Vec<Slot>,
}

impl ProofArena {
    /// An arena for `n` nodes, each holding the empty string `ε` with no
    /// reserved capacity.
    pub fn empty(n: usize) -> Self {
        ProofArena {
            words: Vec::new(),
            slots: vec![
                Slot {
                    off: 0,
                    len: 0,
                    cap_words: 0,
                };
                n
            ],
        }
    }

    /// An arena for `n` nodes, each starting at `ε` with room for
    /// `bits_per_node` bits — the search-loop constructor: any later
    /// [`Self::set`] within the budget is allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if the total reserved pool exceeds `u32::MAX` words (the
    /// slot-offset width).
    pub fn with_capacity(n: usize, bits_per_node: usize) -> Self {
        let cap_words = u32::try_from(words_for(bits_per_node)).expect("capacity fits u32");
        let total = n
            .checked_mul(cap_words as usize)
            .filter(|&t| u32::try_from(t).is_ok())
            .expect("arena within u32 words");
        let slots = (0..n)
            .map(|v| Slot {
                off: (v * cap_words as usize) as u32,
                len: 0,
                cap_words,
            })
            .collect();
        ProofArena {
            words: vec![0u64; total],
            slots,
        }
    }

    /// Packs explicit per-node strings (capacity = exact fit).
    pub fn from_strings(strings: &[BitString]) -> Self {
        Self::from_refs(strings.iter().map(BitString::as_bits))
    }

    /// Packs borrowed bit slices in order (capacity = exact fit).
    pub fn from_refs<'a>(refs: impl IntoIterator<Item = ProofRef<'a>>) -> Self {
        let mut arena = ProofArena::default();
        for r in refs {
            arena.push(r);
        }
        arena
    }

    /// Appends one more node slot holding a copy of `bits`; returns its
    /// index.
    pub fn push(&mut self, bits: ProofRef<'_>) -> usize {
        let off = self.words.len();
        let nw = words_for(bits.len());
        self.words.extend_from_slice(&bits.words()[..nw]);
        self.slots.push(Slot {
            off: u32::try_from(off).expect("arena within u32 words"),
            len: u32::try_from(bits.len()).expect("slot within u32 bits"),
            cap_words: nw as u32,
        });
        self.slots.len() - 1
    }

    /// Number of node slots.
    pub fn n(&self) -> usize {
        self.slots.len()
    }

    /// Whether the arena has no slots at all.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Borrows node `v`'s bits. No copy: the returned [`ProofRef`] reads
    /// straight from the shared word pool.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline(always)]
    pub fn get(&self, v: usize) -> ProofRef<'_> {
        let slot = self.slots[v];
        let off = slot.off as usize;
        ProofRef::raw(
            &self.words[off..off + words_for(slot.len as usize)],
            slot.len as usize,
        )
    }

    /// Length in bits of node `v`'s string.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn len_of(&self, v: usize) -> usize {
        self.slots[v].len as usize
    }

    /// Overwrites node `v`'s bits with `bits` — a word-level copy.
    ///
    /// Within the slot's reserved capacity this is allocation-free (the
    /// odometer/bit-flip fast path); a larger value relocates the slot
    /// to freshly reserved words at the end of the arena.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn set(&mut self, v: usize, bits: ProofRef<'_>) {
        let nw = words_for(bits.len());
        if nw > self.slots[v].cap_words as usize {
            let off = self.words.len();
            self.words.extend_from_slice(&bits.words()[..nw]);
            self.slots[v] = Slot {
                off: u32::try_from(off).expect("arena within u32 words"),
                len: bits.len() as u32,
                cap_words: nw as u32,
            };
        } else {
            let off = self.slots[v].off as usize;
            self.words[off..off + nw].copy_from_slice(&bits.words()[..nw]);
            self.slots[v].len = bits.len() as u32;
        }
    }

    /// Truncates node `v` back to the empty string (capacity is kept).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn clear(&mut self, v: usize) {
        self.slots[v].len = 0;
    }

    /// Rewrites node `v` from a bit iterator, reusing the slot's words.
    ///
    /// Allocation-free while the bits fit the reserved capacity; on
    /// overflow the slot is relocated with doubled reserve.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn write_bits(&mut self, v: usize, bits: impl IntoIterator<Item = bool>) {
        self.clear(v);
        for b in bits {
            self.push_bit(v, b);
        }
    }

    /// Appends one bit to node `v`'s string.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn push_bit(&mut self, v: usize, bit: bool) {
        let slot = self.slots[v];
        let len = slot.len as usize;
        if words_for(len + 1) > slot.cap_words as usize {
            // Relocate with at least one spare word (doubling growth).
            let new_cap = (slot.cap_words as usize * 2).max(1);
            let off = self.words.len();
            let old = slot.off as usize;
            self.words
                .extend_from_within(old..old + slot.cap_words as usize);
            self.words.resize(off + new_cap, 0);
            self.slots[v].off = u32::try_from(off).expect("arena within u32 words");
            self.slots[v].cap_words = new_cap as u32;
        }
        let slot = self.slots[v];
        let pos = slot.off as usize * 64 + len;
        let mask = 1u64 << (pos & 63);
        if bit {
            self.words[pos >> 6] |= mask;
        } else {
            self.words[pos >> 6] &= !mask;
        }
        self.slots[v].len += 1;
    }

    /// Flips bit `index` of node `v` — one XOR, the adversarial mutator.
    ///
    /// # Panics
    ///
    /// Panics if `v` or `index` is out of range.
    pub fn flip(&mut self, v: usize, index: usize) {
        let slot = self.slots[v];
        assert!(
            index < slot.len as usize,
            "bit index {index} out of range for slot of {} bits",
            slot.len
        );
        let pos = slot.off as usize * 64 + index;
        self.words[pos >> 6] ^= 1 << (pos & 63);
    }

    /// The proof size `|P|`: maximum bits at any node (0 when empty).
    pub fn size(&self) -> usize {
        self.slots.iter().map(|s| s.len as usize).max().unwrap_or(0)
    }

    /// Total bits across all nodes.
    pub fn total_bits(&self) -> usize {
        self.slots.iter().map(|s| s.len as usize).sum()
    }

    /// Iterates over the per-node bit slices in index order.
    pub fn iter(&self) -> impl Iterator<Item = ProofRef<'_>> {
        (0..self.n()).map(|v| self.get(v))
    }
}

// ---------------------------------------------------------------------
// Transposed multi-candidate storage
// ---------------------------------------------------------------------

/// Transposed ("bit-sliced") storage for up to 64 candidate proofs at
/// once: one `u64` word holds the *same* proof-bit position of every
/// candidate, so a word op advances all lanes together.
///
/// Where a [`ProofArena`] lays a single proof out as `node → bits`, a
/// `BatchArena` is indexed `(node, bit position) → lane word`: bit `i`
/// of `bits[v][j]` is candidate `i`'s `j`-th bit at node `v`, and bit
/// `i` of `has[v][j]` says whether candidate `i`'s string at `v` is
/// longer than `j` bits (so lanes of different lengths coexist). The
/// invariant `bits & !has == 0` — positions past a lane's length read
/// as zero — makes content comparison a plain XOR.
///
/// This is the substrate of the batched search loops (`lcp_core::batch`)
/// and of [`Scheme::verify_batch`](crate::Scheme::verify_batch)
/// kernels, which fold lane words into a 64-bit accept mask. All
/// storage is allocated up front; `broadcast`/`set_lane`/`flip` never
/// allocate.
///
/// ```
/// use lcp_core::{AsBits, BatchArena, BitString};
///
/// let mut a = BatchArena::new(2, 2);
/// a.broadcast(0, BitString::from_bits([true, false]).as_bits());
/// a.flip(7, 0, 1); // candidate 7 flips node 0's second bit
/// assert_eq!(a.bit(0, 0), !0u64); // every lane agrees on bit 0
/// assert_eq!(a.bit(0, 1), 1 << 7); // lane 7 alone differs at bit 1
/// assert_eq!(a.len_eq(0, 2), !0u64); // all lanes hold 2-bit strings
/// ```
#[derive(Clone, Debug)]
pub struct BatchArena {
    n: usize,
    cap: usize,
    lanes: usize,
    /// `bits[v * cap + j]` — lane word for node `v`, bit position `j`.
    bits: Vec<u64>,
    /// `has[v * cap + j]` — lanes whose string at `v` has length > `j`.
    has: Vec<u64>,
}

impl BatchArena {
    /// An arena for `n` nodes with room for `bits_per_node` bits per
    /// lane string; all 64 lanes start at the empty string `ε`.
    pub fn new(n: usize, bits_per_node: usize) -> Self {
        BatchArena {
            n,
            cap: bits_per_node,
            lanes: 64,
            bits: vec![0u64; n * bits_per_node],
            has: vec![0u64; n * bits_per_node],
        }
    }

    /// Number of node slots.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Reserved bits per node per lane.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Number of lanes currently in use (≤ 64).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Restricts the arena to its low `lanes` lanes; kernels mask their
    /// accept words with [`Self::active`], so the unused high lanes can
    /// hold arbitrary garbage.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ lanes ≤ 64`.
    pub fn set_lanes(&mut self, lanes: usize) {
        assert!(
            (1..=64).contains(&lanes),
            "lane count {lanes} not in 1..=64"
        );
        self.lanes = lanes;
    }

    /// Mask of the in-use lanes: the low [`Self::lanes`] bits.
    pub fn active(&self) -> u64 {
        if self.lanes == 64 {
            !0
        } else {
            (1u64 << self.lanes) - 1
        }
    }

    /// Writes `bits` into every lane of node `v` at once (the incumbent
    /// broadcast of the bit-flip search). Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or `bits` exceeds the per-node
    /// capacity.
    pub fn broadcast(&mut self, v: usize, bits: ProofRef<'_>) {
        let len = bits.len();
        assert!(
            len <= self.cap,
            "{len} bits exceed lane capacity {}",
            self.cap
        );
        let base = v * self.cap;
        for j in 0..self.cap {
            self.bits[base + j] = if bits.get(j) == Some(true) { !0 } else { 0 };
            self.has[base + j] = if j < len { !0 } else { 0 };
        }
    }

    /// Writes `bits` into a single lane of node `v`. Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `lane ≥ 64`, `v` is out of range, or `bits` exceeds
    /// the per-node capacity.
    pub fn set_lane(&mut self, lane: usize, v: usize, bits: ProofRef<'_>) {
        assert!(lane < 64, "lane {lane} out of range");
        let len = bits.len();
        assert!(
            len <= self.cap,
            "{len} bits exceed lane capacity {}",
            self.cap
        );
        let base = v * self.cap;
        let m = 1u64 << lane;
        for j in 0..self.cap {
            if bits.get(j) == Some(true) {
                self.bits[base + j] |= m;
            } else {
                self.bits[base + j] &= !m;
            }
            if j < len {
                self.has[base + j] |= m;
            } else {
                self.has[base + j] &= !m;
            }
        }
    }

    /// Flips bit `j` of one lane's string at node `v` — one XOR, the
    /// batched analogue of [`ProofArena::flip`].
    ///
    /// # Panics
    ///
    /// Panics if `lane ≥ 64` or `v`/`j` is out of range; debug builds
    /// additionally assert that the lane's string is longer than `j`.
    #[inline]
    pub fn flip(&mut self, lane: usize, v: usize, j: usize) {
        assert!(lane < 64, "lane {lane} out of range");
        let idx = v * self.cap + j;
        debug_assert!(
            self.has[idx] & (1 << lane) != 0,
            "flip at bit {j} beyond lane {lane}'s string at node {v}"
        );
        self.bits[idx] ^= 1 << lane;
    }

    /// Lane word for node `v`, bit position `j`: bit `i` is candidate
    /// `i`'s `j`-th bit (0 past the lane's length).
    ///
    /// # Panics
    ///
    /// Panics if `v` or `j` is out of range.
    #[inline(always)]
    pub fn bit(&self, v: usize, j: usize) -> u64 {
        self.bits[v * self.cap + j]
    }

    /// Presence word for node `v`, bit position `j`: lanes whose string
    /// at `v` is longer than `j` bits.
    ///
    /// # Panics
    ///
    /// Panics if `v` or `j` is out of range.
    #[inline(always)]
    pub fn has_bit(&self, v: usize, j: usize) -> u64 {
        self.has[v * self.cap + j]
    }

    /// Lanes whose string at node `v` has exactly `len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or `len` exceeds the capacity.
    pub fn len_eq(&self, v: usize, len: usize) -> u64 {
        let at_least = if len == 0 {
            !0
        } else {
            self.has_bit(v, len - 1)
        };
        let longer = if len < self.cap {
            self.has_bit(v, len)
        } else {
            0
        };
        at_least & !longer
    }

    /// Lanes where the strings at nodes `u` and `v` differ — in content
    /// or in length. The word-parallel inner loop of the verifier
    /// kernels; uses AVX2 when the CPU has it (runtime-detected), with
    /// a scalar `u64` fallback that is always available.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn ne(&self, u: usize, v: usize) -> u64 {
        let (bu, bv) = (u * self.cap, v * self.cap);
        ne_words(
            &self.bits[bu..bu + self.cap],
            &self.has[bu..bu + self.cap],
            &self.bits[bv..bv + self.cap],
            &self.has[bv..bv + self.cap],
        )
    }
}

/// `OR_j (bits_u[j] ^ bits_v[j]) | (has_u[j] ^ has_v[j])`, dispatching
/// to the AVX2 kernel when the CPU supports it.
#[inline]
fn ne_words(bits_u: &[u64], has_u: &[u64], bits_v: &[u64], has_v: &[u64]) -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        if bits_u.len() >= 4 && std::is_x86_feature_detected!("avx2") {
            // SAFETY: the avx2 target feature was runtime-detected.
            return unsafe { ne_words_avx2(bits_u, has_u, bits_v, has_v) };
        }
    }
    ne_words_scalar(bits_u, has_u, bits_v, has_v)
}

/// Portable word-at-a-time fallback for [`ne_words`].
fn ne_words_scalar(bits_u: &[u64], has_u: &[u64], bits_v: &[u64], has_v: &[u64]) -> u64 {
    let mut acc = 0u64;
    for j in 0..bits_u.len() {
        acc |= (bits_u[j] ^ bits_v[j]) | (has_u[j] ^ has_v[j]);
    }
    acc
}

/// Four-words-per-step AVX2 variant of [`ne_words_scalar`].
///
/// # Safety
///
/// The caller must have verified that the CPU supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn ne_words_avx2(bits_u: &[u64], has_u: &[u64], bits_v: &[u64], has_v: &[u64]) -> u64 {
    use std::arch::x86_64::*;
    let n = bits_u.len();
    let mut acc = _mm256_setzero_si256();
    let mut j = 0;
    while j + 4 <= n {
        let a = _mm256_loadu_si256(bits_u.as_ptr().add(j).cast());
        let b = _mm256_loadu_si256(bits_v.as_ptr().add(j).cast());
        let c = _mm256_loadu_si256(has_u.as_ptr().add(j).cast());
        let d = _mm256_loadu_si256(has_v.as_ptr().add(j).cast());
        let diff = _mm256_or_si256(_mm256_xor_si256(a, b), _mm256_xor_si256(c, d));
        acc = _mm256_or_si256(acc, diff);
        j += 4;
    }
    let mut out = [0u64; 4];
    _mm256_storeu_si256(out.as_mut_ptr().cast(), acc);
    let mut r = out[0] | out[1] | out[2] | out[3];
    while j < n {
        r |= (bits_u[j] ^ bits_v[j]) | (has_u[j] ^ has_v[j]);
        j += 1;
    }
    r
}

impl PartialEq for ProofArena {
    /// Content equality: same node count, same bits per node. Layout
    /// (slot order in the pool, capacities, slack) is not observable.
    fn eq(&self, other: &Self) -> bool {
        self.n() == other.n() && (0..self.n()).all(|v| self.get(v) == other.get(v))
    }
}

impl Eq for ProofArena {}

impl fmt::Debug for ProofArena {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bs(pattern: &str) -> BitString {
        BitString::from_bits(pattern.chars().map(|c| c == '1'))
    }

    #[test]
    fn empty_arena_slots_are_epsilon() {
        let a = ProofArena::empty(4);
        assert_eq!(a.n(), 4);
        assert_eq!(a.size(), 0);
        assert!(a.iter().all(|r| r.is_empty()));
    }

    #[test]
    fn set_and_get_roundtrip_across_word_boundaries() {
        let mut a = ProofArena::with_capacity(3, 130);
        for len in [0usize, 1, 63, 64, 65, 127, 128, 129, 130] {
            let s = BitString::from_bits((0..len).map(|i| i % 5 == 0 || i % 3 == 1));
            a.set(1, s.as_bits());
            assert_eq!(a.get(1).to_bitstring(), s, "len {len}");
            // Neighbouring slots stay untouched.
            assert!(a.get(0).is_empty());
            assert!(a.get(2).is_empty());
        }
    }

    #[test]
    fn shrinking_then_reading_masks_stale_bits() {
        let mut a = ProofArena::with_capacity(1, 8);
        a.set(0, bs("11111111").as_bits());
        a.set(0, bs("001").as_bits());
        assert_eq!(a.get(0).to_bitstring(), bs("001"));
        assert_eq!(a.get(0).iter().filter(|&b| b).count(), 1);
        // Equality masks the stale tail too.
        assert_eq!(a.get(0), bs("001").as_bits());
        assert_ne!(a.get(0), bs("0011").as_bits());
    }

    #[test]
    fn overflowing_set_relocates() {
        let mut a = ProofArena::with_capacity(2, 4);
        let long = BitString::from_bits((0..200).map(|i| i % 7 == 0));
        a.set(0, long.as_bits());
        assert_eq!(a.get(0).to_bitstring(), long);
        // The other slot still reads its own words.
        a.set(1, bs("1010").as_bits());
        assert_eq!(a.get(1).to_bitstring(), bs("1010"));
        assert_eq!(a.get(0).to_bitstring(), long);
    }

    #[test]
    fn write_bits_and_push_bit_grow_from_zero_capacity() {
        let mut a = ProofArena::empty(2);
        a.write_bits(0, (0..70).map(|i| i % 2 == 0));
        assert_eq!(a.len_of(0), 70);
        assert_eq!(a.get(0).get(68), Some(true));
        assert_eq!(a.get(0).get(69), Some(false));
        a.push_bit(1, true);
        assert_eq!(a.get(1).to_bitstring(), bs("1"));
    }

    #[test]
    fn flip_is_an_involution() {
        let mut a = ProofArena::from_strings(&[bs("0110"), bs("")]);
        a.flip(0, 0);
        assert_eq!(a.get(0).to_bitstring(), bs("1110"));
        a.flip(0, 0);
        assert_eq!(a.get(0).to_bitstring(), bs("0110"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flip_past_len_panics() {
        let mut a = ProofArena::from_strings(&[bs("01")]);
        a.flip(0, 2);
    }

    #[test]
    fn content_equality_ignores_layout() {
        let tight = ProofArena::from_strings(&[bs("10"), bs("")]);
        let mut roomy = ProofArena::with_capacity(2, 64);
        roomy.set(0, bs("11").as_bits());
        roomy.set(0, bs("10").as_bits());
        assert_eq!(tight, roomy);
        roomy.set(1, bs("0").as_bits());
        assert_ne!(tight, roomy);
    }

    #[test]
    fn sizes_and_totals() {
        let a = ProofArena::from_strings(&[bs("1"), bs("10101"), bs("")]);
        assert_eq!(a.size(), 5);
        assert_eq!(a.total_bits(), 6);
        assert_eq!(format!("{a:?}"), r#"[bits"1", bits"10101", bits""]"#);
    }

    #[test]
    fn batch_lane_roundtrip_against_scalar_strings() {
        let strings = [bs(""), bs("0"), bs("1"), bs("10"), bs("011")];
        let mut a = BatchArena::new(1, 3);
        for (lane, s) in strings.iter().enumerate() {
            a.set_lane(lane, 0, s.as_bits());
        }
        for (lane, s) in strings.iter().enumerate() {
            for j in 0..3 {
                let want_has = j < s.len();
                assert_eq!(
                    a.has_bit(0, j) >> lane & 1 == 1,
                    want_has,
                    "lane {lane} j {j}"
                );
                let want_bit = s.as_bits().get(j) == Some(true);
                assert_eq!(a.bit(0, j) >> lane & 1 == 1, want_bit, "lane {lane} j {j}");
            }
            assert_eq!(a.len_eq(0, s.len()) >> lane & 1, 1, "lane {lane}");
        }
        // Unwritten lanes stay at ε.
        assert_eq!(a.len_eq(0, 0) >> strings.len(), !0u64 >> strings.len());
    }

    #[test]
    fn batch_broadcast_then_flip_diverges_one_lane() {
        let mut a = BatchArena::new(2, 2);
        a.broadcast(0, bs("10").as_bits());
        a.broadcast(1, bs("10").as_bits());
        assert_eq!(a.ne(0, 1), 0);
        a.flip(5, 1, 0);
        assert_eq!(a.ne(0, 1), 1 << 5);
        a.flip(5, 1, 0);
        assert_eq!(a.ne(0, 1), 0);
    }

    #[test]
    fn batch_ne_sees_length_differences() {
        let mut a = BatchArena::new(2, 2);
        a.broadcast(0, bs("1").as_bits());
        a.broadcast(1, bs("1").as_bits());
        a.set_lane(3, 1, bs("10").as_bits());
        // Lane 3's node-1 string is longer; its content prefix matches.
        assert_eq!(a.ne(0, 1), 1 << 3);
    }

    #[test]
    fn batch_active_masks_track_set_lanes() {
        let mut a = BatchArena::new(1, 1);
        assert_eq!(a.active(), !0);
        a.set_lanes(5);
        assert_eq!(a.active(), 0b11111);
        assert_eq!(a.lanes(), 5);
    }

    #[test]
    fn batch_ne_avx2_agrees_with_scalar_fallback() {
        // A capacity wide enough to exercise the 4-words-per-step AVX2
        // path plus its remainder loop (when the CPU has AVX2; the
        // dispatch itself is exercised either way).
        let cap = 11;
        let mk = |seed: u64| BitString::from_bits((0..cap).map(|j| (seed >> (j % 64)) & 1 == 1));
        let mut a = BatchArena::new(2, cap);
        for lane in 0..64 {
            a.set_lane(
                lane,
                0,
                mk(0x9e3779b97f4a7c15u64.wrapping_mul(lane as u64 + 1)).as_bits(),
            );
            a.set_lane(
                lane,
                1,
                mk(0xd1b54a32d192ed03u64.wrapping_mul(lane as u64 + 1)).as_bits(),
            );
        }
        let (b0, h0) = (
            (0..cap).map(|j| a.bit(0, j)).collect::<Vec<_>>(),
            (0..cap).map(|j| a.has_bit(0, j)).collect::<Vec<_>>(),
        );
        let (b1, h1) = (
            (0..cap).map(|j| a.bit(1, j)).collect::<Vec<_>>(),
            (0..cap).map(|j| a.has_bit(1, j)).collect::<Vec<_>>(),
        );
        assert_eq!(a.ne(0, 1), ne_words_scalar(&b0, &h0, &b1, &h1));
    }
}
