//! Canonical forms, isomorphism tests, and automorphism search.
//!
//! §6.1 of the paper builds its Ω(n²) lower bound from *canonical forms*
//! `C(G)` (equal for isomorphic graphs) and from the distinction between
//! *symmetric* graphs (those with a nontrivial automorphism) and
//! *asymmetric* ones. This module makes both notions executable for the
//! small graphs those experiments enumerate.
//!
//! Canonical codes are exact (search over refinement-compatible
//! orderings), so they are restricted to graphs with at most
//! [`MAX_CANON_NODES`] nodes — far beyond what the §6.1/§6.2 enumerations
//! need.

use crate::{Graph, GraphError, NodeId};

/// Maximum node count supported by the exact canonicalization search.
///
/// The canonical code packs the adjacency upper triangle into a `u128`,
/// which caps `n` at 16 (`16 · 15 / 2 = 120 ≤ 128` bits).
pub const MAX_CANON_NODES: usize = 16;

/// A canonical code: the lexicographically-minimal upper-triangle
/// adjacency bitstring over all vertex orderings.
///
/// Two graphs have equal codes **iff** they are isomorphic (and have equal
/// node counts).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CanonicalCode {
    n: usize,
    bits: u128,
}

impl CanonicalCode {
    /// Number of nodes of the encoded graph.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The packed upper-triangle adjacency bits.
    pub fn bits(&self) -> u128 {
        self.bits
    }
}

/// Iterated degree refinement (1-dimensional Weisfeiler–Leman): colours
/// stabilize so that equally-coloured nodes have equal multisets of
/// neighbour colours.
///
/// Returned colours are dense in `0..k` and ordered canonically (by the
/// signature they refine to), so they are isomorphism-invariant.
pub fn refine_colors(g: &Graph, initial: &[usize]) -> Vec<usize> {
    let n = g.n();
    let mut color = initial.to_vec();
    loop {
        // Signature: (own colour, sorted neighbour colours).
        let mut sigs: Vec<(usize, Vec<usize>)> = Vec::with_capacity(n);
        for u in 0..n {
            let mut nb: Vec<usize> = g.neighbors(u).iter().map(|&v| color[v]).collect();
            nb.sort_unstable();
            sigs.push((color[u], nb));
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| sigs[a].cmp(&sigs[b]));
        let mut new_color = vec![0usize; n];
        let mut next = 0;
        for i in 0..n {
            if i > 0 && sigs[order[i]] != sigs[order[i - 1]] {
                next += 1;
            }
            new_color[order[i]] = next;
        }
        if new_color == color {
            return color;
        }
        color = new_color;
    }
}

fn code_of_order(g: &Graph, order: &[usize]) -> u128 {
    let n = order.len();
    let mut bits: u128 = 0;
    let mut pos = 0;
    for i in 0..n {
        for j in (i + 1)..n {
            if g.has_edge(order[i], order[j]) {
                bits |= 1u128 << pos;
            }
            pos += 1;
        }
    }
    bits
}

/// The canonical code of `g`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidConstruction`] if `g` has more than
/// [`MAX_CANON_NODES`] nodes.
pub fn canonical_code(g: &Graph) -> Result<CanonicalCode, GraphError> {
    Ok(CanonicalCode {
        n: g.n(),
        bits: code_of_order(g, &canonical_order(g)?),
    })
}

/// A vertex ordering realizing the canonical code (`order[i]` is the old
/// index placed at canonical position `i`).
///
/// # Errors
///
/// Returns [`GraphError::InvalidConstruction`] if `g` has more than
/// [`MAX_CANON_NODES`] nodes.
pub fn canonical_order(g: &Graph) -> Result<Vec<usize>, GraphError> {
    if g.n() > MAX_CANON_NODES {
        return Err(GraphError::InvalidConstruction(format!(
            "canonicalization supports at most {MAX_CANON_NODES} nodes, got {}",
            g.n()
        )));
    }
    let n = g.n();
    if n == 0 {
        return Ok(Vec::new());
    }
    let base = refine_colors(g, &vec![0; n]);
    let mut best: Option<(u128, Vec<usize>)> = None;
    let mut prefix: Vec<usize> = Vec::with_capacity(n);
    search_orders(g, &base, &mut prefix, &mut best);
    Ok(best.expect("at least one ordering exists").1)
}

/// Enumerates refinement-compatible discrete orderings: repeatedly take
/// the first colour class (after individualizing the prefix) and branch on
/// its members.
fn search_orders(
    g: &Graph,
    base: &[usize],
    prefix: &mut Vec<usize>,
    best: &mut Option<(u128, Vec<usize>)>,
) {
    let n = g.n();
    if prefix.len() == n {
        let code = code_of_order(g, prefix);
        if best.as_ref().is_none_or(|(b, _)| code < *b) {
            *best = Some((code, prefix.clone()));
        }
        return;
    }
    // Individualize the prefix: give position i the unique colour i, then
    // refine the rest.
    let mut init = vec![usize::MAX; n];
    let mut in_prefix = vec![false; n];
    for (i, &u) in prefix.iter().enumerate() {
        init[u] = i;
        in_prefix[u] = true;
    }
    for u in 0..n {
        if !in_prefix[u] {
            init[u] = prefix.len() + base[u];
        }
    }
    let refined = refine_colors(g, &init);
    // The first (smallest-colour) class among unplaced nodes.
    let min_color = (0..n)
        .filter(|&u| !in_prefix[u])
        .map(|u| refined[u])
        .min()
        .expect("some node is unplaced");
    let candidates: Vec<usize> = (0..n)
        .filter(|&u| !in_prefix[u] && refined[u] == min_color)
        .collect();
    for u in candidates {
        prefix.push(u);
        search_orders(g, base, prefix, best);
        prefix.pop();
    }
}

/// The canonical form `C(G)`: an isomorphic copy with identifiers
/// `1..=n` in canonical order, as used in §6.1.
///
/// Isomorphic graphs map to *equal* canonical forms.
///
/// # Errors
///
/// Returns an error if `g` exceeds [`MAX_CANON_NODES`] nodes.
pub fn canonical_form(g: &Graph) -> Result<Graph, GraphError> {
    canonical_copy(g, 0)
}

/// The shifted canonical copy `C(G, i)` of §6.1: the canonical form with
/// identifiers `{i+1, …, i+n}`, so that `v ↦ i + v` is an isomorphism from
/// `C(G)` to `C(G, i)`.
///
/// # Errors
///
/// Returns an error if `g` exceeds [`MAX_CANON_NODES`] nodes.
pub fn canonical_copy(g: &Graph, offset: u64) -> Result<Graph, GraphError> {
    let order = canonical_order(g)?;
    let n = g.n();
    let mut new_index = vec![0usize; n];
    for (i, &old) in order.iter().enumerate() {
        new_index[old] = i;
    }
    let mut h = Graph::from_ids((1..=n as u64).map(|v| NodeId(offset + v)))?;
    for (u, v) in g.edges() {
        h.add_edge(new_index[u], new_index[v])?;
    }
    Ok(h)
}

/// Whether `g` and `h` are isomorphic.
///
/// # Errors
///
/// Returns an error if either graph exceeds [`MAX_CANON_NODES`] nodes.
pub fn is_isomorphic(g: &Graph, h: &Graph) -> Result<bool, GraphError> {
    if g.n() != h.n() || g.m() != h.m() {
        return Ok(false);
    }
    Ok(canonical_code(g)? == canonical_code(h)?)
}

/// Searches for an automorphism of `g` satisfying `constraint` and differing
/// from the identity, via colour-refinement-pruned backtracking.
///
/// `constraint` is called as `constraint(v, image)` and must return whether
/// mapping `v ↦ image` is allowed. The identity automorphism is reported
/// only if no other satisfying automorphism exists *and* the identity
/// satisfies the constraint — callers looking for *nontrivial* maps get
/// exactly that because the search skips the identity.
fn search_automorphism<F>(g: &Graph, constraint: F) -> Option<Vec<usize>>
where
    F: Fn(usize, usize) -> bool,
{
    let n = g.n();
    if n == 0 {
        return None;
    }
    let colors = refine_colors(g, &vec![0; n]);
    let mut map = vec![usize::MAX; n];
    let mut used = vec![false; n];
    fn rec<F: Fn(usize, usize) -> bool>(
        g: &Graph,
        colors: &[usize],
        constraint: &F,
        v: usize,
        map: &mut [usize],
        used: &mut [bool],
        identity_so_far: bool,
    ) -> bool {
        let n = g.n();
        if v == n {
            return !identity_so_far;
        }
        for img in 0..n {
            if used[img] || colors[img] != colors[v] || !constraint(v, img) {
                continue;
            }
            // Adjacency consistency with previously mapped vertices.
            let ok = (0..v).all(|u| g.has_edge(u, v) == g.has_edge(map[u], img));
            if !ok {
                continue;
            }
            // Prune the pure-identity branch at the last vertex.
            if v == n - 1 && identity_so_far && img == v {
                continue;
            }
            map[v] = img;
            used[img] = true;
            if rec(
                g,
                colors,
                constraint,
                v + 1,
                map,
                used,
                identity_so_far && img == v,
            ) {
                return true;
            }
            used[img] = false;
            map[v] = usize::MAX;
        }
        false
    }
    rec(g, &colors, &constraint, 0, &mut map, &mut used, true).then_some(map)
}

/// A nontrivial automorphism of `g` (as an index permutation), or `None`
/// if `g` is asymmetric.
///
/// "Symmetric graph" in §6.1 means exactly: this returns `Some`.
pub fn nontrivial_automorphism(g: &Graph) -> Option<Vec<usize>> {
    search_automorphism(g, |_, _| true)
}

/// Whether `g` has a nontrivial automorphism (§6.1's *symmetric* graphs).
pub fn is_symmetric(g: &Graph) -> bool {
    nontrivial_automorphism(g).is_some()
}

/// A fixpoint-free automorphism (`g(v) ≠ v` for all `v`), or `None`.
///
/// This is the §6.2 property on trees, implemented for arbitrary graphs.
pub fn fixpoint_free_automorphism(g: &Graph) -> Option<Vec<usize>> {
    if g.n() == 0 {
        return None;
    }
    search_automorphism(g, |v, img| v != img)
}

/// Checks that `map` is an automorphism of `g` (a permutation preserving
/// adjacency). Used by tests and by verifiers that receive a claimed
/// automorphism inside a proof.
pub fn is_automorphism(g: &Graph, map: &[usize]) -> bool {
    let n = g.n();
    if map.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &img in map {
        if img >= n || seen[img] {
            return false;
        }
        seen[img] = true;
    }
    g.edges().all(|(u, v)| g.has_edge(map[u], map[v]))
        && (0..n).all(|u| g.neighbors(u).len() == g.neighbors(map[u]).len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    /// Random relabelling + random index shuffle of `g`.
    fn scramble(g: &Graph, rng: &mut StdRng) -> Graph {
        let n = g.n();
        let mut perm: Vec<usize> = (0..n).collect();
        perm.shuffle(rng);
        let mut ids: Vec<u64> = (1..=n as u64).map(|x| x * 7 + 3).collect();
        ids.shuffle(rng);
        let mut h = Graph::from_ids(ids.iter().map(|&x| NodeId(x))).unwrap();
        for (u, v) in g.edges() {
            h.add_edge(perm[u], perm[v]).unwrap();
        }
        h
    }

    #[test]
    fn canonical_code_invariant_under_scrambling() {
        let mut rng = StdRng::seed_from_u64(5);
        for n in [4, 6, 8] {
            for _ in 0..8 {
                let g = generators::gnp(n, 0.4, &mut rng);
                let h = scramble(&g, &mut rng);
                assert_eq!(canonical_code(&g).unwrap(), canonical_code(&h).unwrap());
                assert!(is_isomorphic(&g, &h).unwrap());
            }
        }
    }

    #[test]
    fn non_isomorphic_graphs_get_distinct_codes() {
        let p4 = generators::path(4);
        let s3 = generators::star(3); // also 4 nodes, 3 edges, different shape
        assert!(!is_isomorphic(&p4, &s3).unwrap());
        assert_ne!(canonical_code(&p4).unwrap(), canonical_code(&s3).unwrap());
    }

    #[test]
    fn c6_vs_two_triangles() {
        let c6 = generators::cycle(6);
        let two_k3 = crate::ops::disjoint_union(
            &generators::cycle(3),
            &crate::ops::shift_ids(&generators::cycle(3), 10),
        )
        .unwrap();
        assert!(!is_isomorphic(&c6, &two_k3).unwrap());
    }

    #[test]
    fn canonical_form_is_idempotent() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = generators::gnp(7, 0.5, &mut rng);
        let c1 = canonical_form(&g).unwrap();
        let c2 = canonical_form(&c1).unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    fn canonical_copy_shifts_ids() {
        let g = generators::cycle(4);
        let c = canonical_copy(&g, 100).unwrap();
        assert_eq!(
            c.ids(),
            &[NodeId(101), NodeId(102), NodeId(103), NodeId(104)]
        );
        assert!(is_isomorphic(&g, &c).unwrap());
    }

    #[test]
    fn too_large_graph_rejected() {
        let g = generators::path(MAX_CANON_NODES + 1);
        assert!(canonical_code(&g).is_err());
    }

    #[test]
    fn cycles_are_symmetric() {
        for n in 3..8 {
            let g = generators::cycle(n);
            let a = nontrivial_automorphism(&g).unwrap();
            assert!(is_automorphism(&g, &a));
            assert!(a.iter().enumerate().any(|(v, &img)| v != img));
        }
    }

    #[test]
    fn smallest_asymmetric_tree_is_recognized() {
        // The 7-node "spider" with legs of lengths 1, 2, 3 is the smallest
        // asymmetric tree.
        let mut g = Graph::with_contiguous_ids(7);
        // centre 0; leg A: 1; leg B: 2-3; leg C: 4-5-6
        for (u, v) in [(0, 1), (0, 2), (2, 3), (0, 4), (4, 5), (5, 6)] {
            g.add_edge(u, v).unwrap();
        }
        assert!(!is_symmetric(&g));
        assert_eq!(fixpoint_free_automorphism(&g), None);
    }

    #[test]
    fn even_cycle_has_fixpoint_free_automorphism() {
        let g = generators::cycle(6);
        let a = fixpoint_free_automorphism(&g).unwrap();
        assert!(is_automorphism(&g, &a));
        assert!(a.iter().enumerate().all(|(v, &img)| v != img));
    }

    #[test]
    fn star_has_symmetry_but_not_fixpoint_free() {
        // Swapping two leaves fixes the centre: symmetric, but every
        // automorphism fixes the centre.
        let g = generators::star(3);
        assert!(is_symmetric(&g));
        assert_eq!(fixpoint_free_automorphism(&g), None);
    }

    #[test]
    fn path2_has_fixpoint_free_swap() {
        let g = generators::path(2);
        let a = fixpoint_free_automorphism(&g).unwrap();
        assert_eq!(a, vec![1, 0]);
    }

    #[test]
    fn refinement_separates_degrees() {
        let g = generators::star(3);
        let c = refine_colors(&g, &[0; 4]);
        assert_ne!(c[0], c[1]);
        assert_eq!(c[1], c[2]);
        assert_eq!(c[2], c[3]);
    }

    #[test]
    fn is_automorphism_rejects_non_permutations() {
        let g = generators::cycle(4);
        assert!(!is_automorphism(&g, &[0, 0, 1, 2]));
        assert!(!is_automorphism(&g, &[0, 1, 2]));
        assert!(is_automorphism(&g, &[1, 2, 3, 0]));
        // Swapping two adjacent nodes of a path is not an automorphism.
        let p = generators::path(3);
        assert!(!is_automorphism(&p, &[1, 0, 2]));
    }
}
