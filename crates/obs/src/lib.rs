//! # `lcp-obs` — zero-dependency observability primitives
//!
//! The verification stack runs in three very different shapes — batch
//! campaigns (`lcp-campaign`), churn equivalence sweeps, and the
//! resident daemon (`lcp-serve`) — and all three need the same things
//! measured: how often a hot path ran, how long a phase took, and which
//! routing decision (batched vs scalar, cache hit vs rebuild) was taken.
//! This crate provides the shared substrate, hand-rolled like
//! `lcp_core::json` so the workspace stays free of external
//! dependencies:
//!
//! * [`Counter`] / [`Gauge`] — relaxed-ordering atomics, `const`
//!   constructible so instrumented crates declare them as plain
//!   `static`s with zero registration cost on the hot path;
//! * [`Histogram`] — a fixed array of log2 buckets (bucket `b` counts
//!   values of bit-length `b`, i.e. `2^(b-1) ≤ v < 2^b`), sized for
//!   nanosecond latencies up to ~1 s and beyond into a `+Inf` bucket;
//! * a lightweight span API ([`register_span`] / [`start_span`]) —
//!   monotonic start/stop timing with registration-time parent links,
//!   recorded into pre-sized per-thread buffers that drain into the
//!   process-wide [`Registry`] (never mid-hot-loop: records are written
//!   by index into a buffer allocated once per thread);
//! * two exporters — [`Registry::to_json`] (deterministically ordered,
//!   parseable by `lcp_core::json`) and [`Registry::to_prometheus`]
//!   (text exposition format, what the `lcp-serve` `metrics` op
//!   returns).
//!
//! ## The determinism contract
//!
//! Instrumentation must never perturb what the instrumented code
//! computes: every primitive here is write-only from the hot path's
//! point of view (nothing reads a metric to make a decision), records
//! are plain relaxed atomic adds, and the span path performs no heap
//! allocation after a thread's first span (the probe in
//! `lcp-core/tests/alloc_probe.rs` pins this transitively). Metrics
//! appear only in sidecar outputs — reports, checkpoints, and RNG
//! streams never embed them.
#![deny(missing_docs)]

use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------
// Scalar metrics
// ---------------------------------------------------------------------

/// A monotonically increasing event count (relaxed atomic).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter, `const` so it can back a `static`.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` (hot loops accumulate locally and flush once here).
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can move both ways (queue depths, residency counts).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A zeroed gauge, `const` so it can back a `static`.
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Replaces the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------

/// Bucket count of every [`Histogram`]: bucket `b < 31` holds values of
/// bit-length `b` (cumulative upper bound `2^b − 1`); bucket 31 is the
/// `+Inf` tail. In nanoseconds, bucket 30 reaches ~1.07 s.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A fixed-bucket log2 histogram for latency-like `u64` samples.
///
/// Observation is two relaxed atomic adds — no allocation, no locks —
/// so it is safe on any hot path. Bucket boundaries are powers of two:
/// exact enough to separate a cache hit from a rebuild or a resident
/// verify from a cold prepare, which is what operators actually read.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram, `const` so it can back a `static`.
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            sum: AtomicU64::new(0),
        }
    }

    /// The bucket index `value` falls into (its bit length, capped).
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// The inclusive upper bound of bucket `b`, or `None` for `+Inf`.
    pub fn bucket_bound(b: usize) -> Option<u64> {
        (b + 1 < HISTOGRAM_BUCKETS).then(|| (1u64 << b) - 1)
    }

    /// Records one sample.
    #[inline]
    pub fn observe(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total samples observed (the sum over all buckets).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A snapshot of the per-bucket counts.
    pub fn snapshot(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }
}

// ---------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------

/// Identifier of a registered span (an index into the global span
/// table). Copyable and cheap to stash in a `OnceLock` per call site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanId(u16);

struct SpanDef {
    name: &'static str,
    parent: Option<SpanId>,
    hist: Histogram,
}

/// How many finished-span records a thread buffers before draining into
/// the registry. The buffer is allocated once per thread (at its first
/// span); recording is an in-capacity write by index — no allocation.
const SPAN_BUF_CAP: usize = 256;

struct SpanBuf {
    records: Vec<(u16, u64)>,
    depth: usize,
}

thread_local! {
    static SPAN_BUF: RefCell<SpanBuf> = RefCell::new(SpanBuf {
        records: Vec::with_capacity(SPAN_BUF_CAP),
        depth: 0,
    });
}

fn span_defs() -> &'static Mutex<Vec<&'static SpanDef>> {
    static DEFS: OnceLock<Mutex<Vec<&'static SpanDef>>> = OnceLock::new();
    DEFS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Registers a span under `name` with an optional parent link,
/// returning its id. Idempotent: re-registering an existing name
/// returns the original id (the first parent link wins).
pub fn register_span(name: &'static str, parent: Option<SpanId>) -> SpanId {
    let mut defs = span_defs().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(i) = defs.iter().position(|d| d.name == name) {
        return SpanId(i as u16);
    }
    assert!(defs.len() < u16::MAX as usize, "span table overflow");
    if let Some(SpanId(p)) = parent {
        assert!(
            (p as usize) < defs.len(),
            "span parent must be registered first"
        );
    }
    defs.push(Box::leak(Box::new(SpanDef {
        name,
        parent,
        hist: Histogram::new(),
    })));
    SpanId((defs.len() - 1) as u16)
}

/// A running span; its wall-clock duration (monotonic, nanoseconds) is
/// recorded into the thread buffer when dropped.
#[derive(Debug)]
pub struct ActiveSpan {
    id: SpanId,
    start: Instant,
}

/// Starts timing span `id` now.
pub fn start_span(id: SpanId) -> ActiveSpan {
    SPAN_BUF.with(|b| b.borrow_mut().depth += 1);
    ActiveSpan {
        id,
        start: Instant::now(),
    }
}

impl Drop for ActiveSpan {
    fn drop(&mut self) {
        let ns = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        SPAN_BUF.with(|b| {
            let mut buf = b.borrow_mut();
            if buf.records.len() == SPAN_BUF_CAP {
                drain_records(&mut buf.records);
            }
            buf.records.push((self.id.0, ns));
            buf.depth = buf.depth.saturating_sub(1);
            // Leaving the outermost span: nothing is pending above us,
            // so the buffer drains eagerly — exporters on other threads
            // see complete data once a thread is quiescent.
            if buf.depth == 0 {
                drain_records(&mut buf.records);
            }
        });
    }
}

fn drain_records(records: &mut Vec<(u16, u64)>) {
    if records.is_empty() {
        return;
    }
    let defs = span_defs().lock().unwrap_or_else(|e| e.into_inner());
    for &(id, ns) in records.iter() {
        if let Some(def) = defs.get(id as usize) {
            def.hist.observe(ns);
        }
    }
    records.clear();
}

/// Drains the calling thread's pending span records into the registry.
/// Exporters call this so a thread's own just-finished spans are always
/// visible in the same thread's export.
pub fn flush_thread() {
    SPAN_BUF.with(|b| drain_records(&mut b.borrow_mut().records));
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

enum MetricRef {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

struct Entry {
    /// Base metric name (`lcp_serve_request_seconds`).
    name: &'static str,
    /// Label pairs without braces (`op="verify"`), or `""`.
    labels: &'static str,
    help: &'static str,
    metric: MetricRef,
}

impl Entry {
    /// The series key both exporters sort by: `name{labels}`.
    fn key(&self) -> String {
        if self.labels.is_empty() {
            self.name.to_string()
        } else {
            format!("{}{{{}}}", self.name, self.labels)
        }
    }
}

/// The process-wide metric catalog: instrumented crates register their
/// `static` metrics here (idempotently), exporters snapshot it.
///
/// Registration is not on any hot path — incrementing a `Counter` needs
/// no registry at all; registering merely makes it exportable.
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    fn new() -> Self {
        Registry {
            entries: Mutex::new(Vec::new()),
        }
    }

    fn register(&self, name: &'static str, labels: &'static str, help: &'static str, m: MetricRef) {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if entries.iter().any(|e| e.name == name && e.labels == labels) {
            return;
        }
        entries.push(Entry {
            name,
            labels,
            help,
            metric: m,
        });
    }

    /// Registers a counter series (idempotent by `(name, labels)`).
    pub fn counter(
        &self,
        name: &'static str,
        labels: &'static str,
        help: &'static str,
        c: &'static Counter,
    ) {
        self.register(name, labels, help, MetricRef::Counter(c));
    }

    /// Registers a gauge series (idempotent by `(name, labels)`).
    pub fn gauge(
        &self,
        name: &'static str,
        labels: &'static str,
        help: &'static str,
        g: &'static Gauge,
    ) {
        self.register(name, labels, help, MetricRef::Gauge(g));
    }

    /// Registers a histogram series (idempotent by `(name, labels)`).
    pub fn histogram(
        &self,
        name: &'static str,
        labels: &'static str,
        help: &'static str,
        h: &'static Histogram,
    ) {
        self.register(name, labels, help, MetricRef::Histogram(h));
    }

    /// Deterministic JSON export: every registered series plus every
    /// registered span, keys sorted, parseable by `lcp_core::json`.
    /// Determinism here means *structural* — same catalog, same key
    /// order, byte for byte; the values are live measurements.
    pub fn to_json(&self) -> String {
        flush_thread();
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let mut counters: Vec<(String, String)> = Vec::new();
        let mut gauges: Vec<(String, String)> = Vec::new();
        let mut hists: Vec<(String, String)> = Vec::new();
        for e in entries.iter() {
            match e.metric {
                MetricRef::Counter(c) => counters.push((e.key(), c.get().to_string())),
                MetricRef::Gauge(g) => gauges.push((e.key(), g.get().to_string())),
                MetricRef::Histogram(h) => hists.push((e.key(), histogram_json(h))),
            }
        }
        drop(entries);
        let mut spans: Vec<(String, String)> = Vec::new();
        {
            let defs = span_defs().lock().unwrap_or_else(|e| e.into_inner());
            for def in defs.iter() {
                let parent = match def.parent {
                    Some(SpanId(p)) => escape(defs[p as usize].name),
                    None => "null".into(),
                };
                spans.push((
                    def.name.to_string(),
                    format!(
                        "{{ \"parent\": {parent}, {} }}",
                        histogram_fields(&def.hist)
                    ),
                ));
            }
        }
        for list in [&mut counters, &mut gauges, &mut hists, &mut spans] {
            list.sort_by(|a, b| a.0.cmp(&b.0));
        }
        let mut w = String::with_capacity(1 << 12);
        w.push_str("{\n");
        for (i, (section, list)) in [
            ("counters", &counters),
            ("gauges", &gauges),
            ("histograms", &hists),
            ("spans", &spans),
        ]
        .iter()
        .enumerate()
        {
            let _ = write!(w, "  \"{section}\": {{");
            for (j, (key, value)) in list.iter().enumerate() {
                let sep = if j + 1 < list.len() { "," } else { "" };
                let _ = write!(w, "\n    {}: {value}{sep}", escape(key));
            }
            if !list.is_empty() {
                w.push_str("\n  ");
            }
            w.push_str(if i + 1 < 4 { "},\n" } else { "}\n" });
        }
        w.push_str("}\n");
        w
    }

    /// Prometheus-style text exposition: `# HELP`/`# TYPE` headers,
    /// counters and gauges as single samples, histograms as cumulative
    /// `_bucket{le=...}` series plus `_sum`/`_count`. Spans export as
    /// histograms of nanoseconds with a `# SPAN name parent=...`
    /// comment recording the hierarchy.
    pub fn to_prometheus(&self) -> String {
        flush_thread();
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let mut sorted: Vec<&Entry> = entries.iter().collect();
        sorted.sort_by(|a, b| (a.name, a.labels).cmp(&(b.name, b.labels)));
        let mut w = String::with_capacity(1 << 12);
        let mut last_name = "";
        for e in &sorted {
            if e.name != last_name {
                let kind = match e.metric {
                    MetricRef::Counter(_) => "counter",
                    MetricRef::Gauge(_) => "gauge",
                    MetricRef::Histogram(_) => "histogram",
                };
                let _ = writeln!(w, "# HELP {} {}", e.name, e.help);
                let _ = writeln!(w, "# TYPE {} {kind}", e.name);
                last_name = e.name;
            }
            match e.metric {
                MetricRef::Counter(c) => {
                    let _ = writeln!(w, "{} {}", e.key(), c.get());
                }
                MetricRef::Gauge(g) => {
                    let _ = writeln!(w, "{} {}", e.key(), g.get());
                }
                MetricRef::Histogram(h) => exposition_histogram(&mut w, e.name, e.labels, h),
            }
        }
        drop(entries);
        let defs = span_defs().lock().unwrap_or_else(|e| e.into_inner());
        for def in defs.iter() {
            let parent = match def.parent {
                Some(SpanId(p)) => defs[p as usize].name,
                None => "none",
            };
            let _ = writeln!(w, "# SPAN {} parent={parent}", def.name);
            let _ = writeln!(w, "# HELP {} span duration in nanoseconds", def.name);
            let _ = writeln!(w, "# TYPE {} histogram", def.name);
            exposition_histogram(&mut w, def.name, "", &def.hist);
        }
        w
    }
}

fn histogram_fields(h: &Histogram) -> String {
    let snapshot = h.snapshot();
    let buckets = snapshot
        .iter()
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "\"count\": {}, \"sum\": {}, \"buckets\": [{buckets}]",
        snapshot.iter().sum::<u64>(),
        h.sum()
    )
}

fn histogram_json(h: &Histogram) -> String {
    format!("{{ {} }}", histogram_fields(h))
}

fn exposition_histogram(w: &mut String, name: &str, labels: &str, h: &Histogram) {
    let snapshot = h.snapshot();
    let sep = if labels.is_empty() { "" } else { "," };
    let mut cumulative = 0u64;
    for (b, count) in snapshot.iter().enumerate() {
        cumulative += count;
        // Empty buckets below the data are elided to keep the wire
        // format small; cumulative counts make this lossless.
        if *count == 0 && b + 1 != HISTOGRAM_BUCKETS {
            continue;
        }
        let le = match Histogram::bucket_bound(b) {
            Some(bound) => bound.to_string(),
            None => "+Inf".into(),
        };
        let _ = writeln!(w, "{name}_bucket{{{labels}{sep}le=\"{le}\"}} {cumulative}");
    }
    let suffix = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    };
    let _ = writeln!(w, "{name}_sum{suffix} {}", h.sum());
    let _ = writeln!(w, "{name}_count{suffix} {cumulative}");
}

/// The process-wide registry every instrumented crate registers into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Minimal JSON string escaper (mirrors `lcp_core::json::escape`; this
/// crate sits below `lcp-core` and cannot call it).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_do_arithmetic() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        c.add(0);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn histogram_buckets_partition_the_u64_line() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // Every value of bit-length b lands in bucket b, within bound.
        for b in 1..HISTOGRAM_BUCKETS - 1 {
            let bound = Histogram::bucket_bound(b).unwrap();
            assert_eq!(Histogram::bucket_of(bound), b, "upper edge of bucket {b}");
            assert_eq!(
                Histogram::bucket_of(bound / 2 + 1),
                b,
                "lower edge of bucket {b}"
            );
        }
        assert_eq!(Histogram::bucket_bound(HISTOGRAM_BUCKETS - 1), None);
    }

    #[test]
    fn histogram_bucket_sums_equal_counts() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 3, 900, 1_000_000, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.snapshot().iter().sum::<u64>(), h.count());
        // The sum is a wrapping atomic add by construction.
        assert_eq!(
            h.sum(),
            (1 + 1 + 3 + 900 + 1_000_000u64).wrapping_add(u64::MAX)
        );
    }

    // The registry and span table are process-global, so the export and
    // span behaviours are exercised in one test function: libtest runs
    // test fns concurrently and interleaved registration would make
    // list contents (though never their ordering guarantees) racy.
    #[test]
    fn exports_are_sorted_and_spans_drain() {
        static C_B: Counter = Counter::new();
        static C_A: Counter = Counter::new();
        static G: Gauge = Gauge::new();
        static H: Histogram = Histogram::new();
        let reg = global();
        reg.counter(
            "zz_obs_test_total",
            "",
            "registered first, sorts last",
            &C_B,
        );
        reg.counter(
            "aa_obs_test_total",
            "",
            "registered second, sorts first",
            &C_A,
        );
        reg.counter("aa_obs_test_total", "", "duplicate is ignored", &C_B);
        reg.gauge("obs_test_depth", "", "a gauge", &G);
        reg.histogram("obs_test_latency_ns", "shape=\"test\"", "a histogram", &H);
        C_A.inc();
        C_B.add(2);
        G.set(-4);
        H.observe(5);
        H.observe(700);

        let parent = register_span("obs_test_outer", None);
        let child = register_span("obs_test_inner", Some(parent));
        assert_eq!(register_span("obs_test_outer", None), parent, "idempotent");
        {
            let _outer = start_span(parent);
            let _inner = start_span(child);
        }

        let json = reg.to_json();
        let aa = json
            .find("\"aa_obs_test_total\": 1")
            .expect("counter exported");
        let zz = json
            .find("\"zz_obs_test_total\": 2")
            .expect("counter exported");
        assert!(aa < zz, "counters are name-sorted:\n{json}");
        assert!(json.contains("\"obs_test_depth\": -4"));
        assert!(json.contains("\"obs_test_latency_ns{shape=\\\"test\\\"}\""));
        assert!(json.contains("\"obs_test_inner\": { \"parent\": \"obs_test_outer\""));

        let text = reg.to_prometheus();
        assert!(text.contains("# TYPE aa_obs_test_total counter"));
        assert!(text.contains("aa_obs_test_total 1"));
        assert!(text.contains("obs_test_depth -4"));
        assert!(text.contains("obs_test_latency_ns_bucket{shape=\"test\",le=\"7\"} 1"));
        assert!(text.contains("obs_test_latency_ns_bucket{shape=\"test\",le=\"+Inf\"} 2"));
        assert!(text.contains("obs_test_latency_ns_count{shape=\"test\"} 2"));
        assert!(text.contains("# SPAN obs_test_inner parent=obs_test_outer"));
        // Both spans drained when the outer span closed the stack.
        assert!(
            text.contains("obs_test_outer_count 1"),
            "span histograms populated:\n{text}"
        );
        assert!(text.contains("obs_test_inner_count 1"));

        // Structural determinism: a second export with unchanged values
        // is byte-identical.
        assert_eq!(json, reg.to_json());
    }
}
