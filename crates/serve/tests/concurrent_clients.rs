//! The concurrency contract: two sessions on distinct cells progress
//! independently, a connection beyond the worker pool waits its turn in
//! the bounded room, and one past the room gets the typed busy error —
//! immediately, never a hang.

use lcp_graph::families::GraphFamily;
use lcp_schemes::registry::Polarity;
use lcp_serve::{CellCoord, Client, ClientError, Server, ServerConfig, WireMutation};

fn coord(n: usize) -> CellCoord {
    CellCoord {
        scheme: "bipartite".into(),
        family: GraphFamily::Cycle,
        n,
        seed: 7,
        polarity: Polarity::Yes,
    }
}

#[test]
fn sessions_progress_and_overload_is_a_typed_busy_error() {
    // Two workers, a one-slot waiting room: connections 1 and 2 get
    // workers, 3 waits, 4 is refused.
    let server = Server::bind(ServerConfig {
        workers: 2,
        queue: 1,
        capacity: 8,
        ..ServerConfig::default()
    })
    .expect("bind");
    let handle = server.spawn().expect("spawn");
    let addr = handle.addr();

    let mut c1 = Client::connect(addr).expect("connect c1");
    c1.session_open(&coord(24)).expect("c1 session");
    let mut c2 = Client::connect(addr).expect("connect c2");
    c2.session_open(&coord(32)).expect("c2 session");

    // Both sessions make interleaved progress on their private cells.
    c1.mutate(&WireMutation::EdgeInsert(0, 2))
        .expect("c1 mutate");
    c2.mutate(&WireMutation::EdgeInsert(1, 3))
        .expect("c2 mutate");
    c1.mutate(&WireMutation::EdgeDelete(0, 2))
        .expect("c1 mutate");
    c2.mutate(&WireMutation::EdgeDelete(1, 3))
        .expect("c2 mutate");

    // Both workers are pinned to c1/c2, so c3 lands in the waiting room
    // (kernel accept order is connection order) and c4 overflows it.
    let mut c3 = Client::connect(addr).expect("connect c3");
    let mut c4 = Client::connect(addr).expect("connect c4");
    let err = c4.read_response().expect_err("c4 must be refused");
    match err {
        ClientError::Protocol { ref kind, .. } => assert_eq!(kind, "busy"),
        other => panic!("expected the typed busy error, got {other}"),
    }

    // c3's request parks in its socket until a worker frees up...
    let waiter = std::thread::spawn(move || c3.stats());
    // ...which happens when c1 finishes.
    c1.session_close().expect("c1 close");
    drop(c1);
    waiter
        .join()
        .expect("waiter panicked")
        .expect("c3 is served after c1 departs");

    // c2 was never disturbed.
    c2.session_close().expect("c2 close");
    drop(c2);
    handle.stop().expect("clean drain");
}

#[test]
fn shutdown_request_drains_the_daemon() {
    let handle = Server::bind(ServerConfig::default())
        .expect("bind")
        .spawn()
        .expect("spawn");
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.prepare(&coord(16)).expect("prepare");
    client.shutdown().expect("shutdown is acknowledged");

    // The drain closes the connection between requests; depending on
    // timing the next request observes the close on write or on read.
    match client.stats() {
        Err(ClientError::Closed | ClientError::Io(_)) => {}
        other => panic!("expected a drained connection, got {other:?}"),
    }
    handle.stop().expect("already-drained stop is clean");
}
