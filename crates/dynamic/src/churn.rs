//! Seeded churn workloads: replayable mutation streams and the
//! incremental-vs-full equivalence driver behind `lcp-campaign --churn`.
//!
//! A [`ChurnStream`] draws [`Mutation`]s from an [`rand::rngs::StdRng`]
//! seeded per the workspace seed policy: callers derive the stream seed
//! from their own coordinates (the campaign splitmixes `(campaign seed,
//! scheme, family, n, polarity)`), so adding cells never perturbs
//! existing streams and any failure is replayable from the seed alone.
//! Proposals are valid by construction against the instance's *current*
//! state — the stream looks at the graph before proposing, so a replay
//! of the same seed against the same start state yields the same
//! mutation sequence.
//!
//! [`run_churn`] is the measurement loop: apply, incrementally
//! [`DynamicInstance::reverify`], periodically cross-check against the
//! from-scratch [`DynamicInstance::full_check`], and record per-mutation
//! impact and cost. The label-free mutation kinds (edge insert/delete,
//! proof rewrite) are generated; typed label churn is driven explicitly
//! through [`DynamicInstance::set_node_label`] by typed callers.

use crate::{DynamicInstance, Mutation};
use lcp_core::{BitString, Deadline};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

/// Tuning for a churn stream.
#[derive(Clone, Copy, Debug)]
pub struct ChurnConfig {
    /// Stream seed (derive it from your cell coordinates).
    pub seed: u64,
    /// Maximum length of a rewritten proof string, in bits.
    pub max_proof_bits: usize,
    /// Relative weight of edge insertions.
    pub insert_weight: u32,
    /// Relative weight of edge deletions.
    pub delete_weight: u32,
    /// Relative weight of proof rewrites.
    pub rewrite_weight: u32,
}

impl ChurnConfig {
    /// Balanced default: equal-weight mutation kinds, rewrites of up to
    /// 4 bits.
    pub fn new(seed: u64) -> Self {
        ChurnConfig {
            seed,
            max_proof_bits: 4,
            insert_weight: 1,
            delete_weight: 1,
            rewrite_weight: 1,
        }
    }
}

/// A deterministic mutation proposer over a [`DynamicInstance`].
#[derive(Debug)]
pub struct ChurnStream {
    rng: StdRng,
    config: ChurnConfig,
}

/// Rejection-sampling attempts before a mutation kind is abandoned for
/// this step (e.g. edge insertion on a near-complete graph).
const ATTEMPTS: usize = 32;

impl ChurnStream {
    /// Seeds a stream from `config`.
    pub fn new(config: ChurnConfig) -> Self {
        ChurnStream {
            rng: StdRng::seed_from_u64(config.seed),
            config,
        }
    }

    /// Proposes the next mutation, valid against `target`'s current
    /// state, or `None` when no kind is currently applicable (empty
    /// graphs, mostly).
    ///
    /// The proposal consumes RNG state whether or not the caller applies
    /// it; applying every proposal keeps replays exact.
    pub fn propose(&mut self, target: &DynamicInstance) -> Option<Mutation> {
        if target.n() == 0 {
            return None;
        }
        let (iw, dw, rw) = (
            self.config.insert_weight,
            self.config.delete_weight,
            self.config.rewrite_weight,
        );
        let total = iw + dw + rw;
        if total == 0 {
            return None;
        }
        let r = self.rng.random_range(0..total);
        let picked = if r < iw {
            0
        } else if r < iw + dw {
            1
        } else {
            2
        };
        // Rotate through the kinds starting at the picked one, so an
        // inapplicable pick (complete graph, edgeless graph) falls back
        // deterministically — zero-weight kinds never fire, even as
        // fallbacks.
        for offset in 0..3 {
            match (picked + offset) % 3 {
                0 if iw > 0 => {
                    if let Some(m) = self.propose_insert(target) {
                        return Some(m);
                    }
                }
                1 if dw > 0 => {
                    if let Some(m) = self.propose_delete(target) {
                        return Some(m);
                    }
                }
                2 if rw > 0 => return Some(self.propose_rewrite(target)),
                _ => {}
            }
        }
        None
    }

    fn propose_insert(&mut self, target: &DynamicInstance) -> Option<Mutation> {
        let g = target.graph();
        let n = target.n();
        if n < 2 {
            return None;
        }
        for _ in 0..ATTEMPTS {
            let u = self.rng.random_range(0..n);
            let v = self.rng.random_range(0..n);
            if u != v && !g.has_edge(u, v) {
                return Some(Mutation::EdgeInsert(u, v));
            }
        }
        None
    }

    fn propose_delete(&mut self, target: &DynamicInstance) -> Option<Mutation> {
        let g = target.graph();
        if g.m() == 0 {
            return None;
        }
        for _ in 0..ATTEMPTS {
            let u = self.rng.random_range(0..target.n());
            if g.degree(u) > 0 {
                let v = g.neighbors(u)[self.rng.random_range(0..g.degree(u))];
                return Some(Mutation::EdgeDelete(u, v));
            }
        }
        None
    }

    fn propose_rewrite(&mut self, target: &DynamicInstance) -> Mutation {
        let v = self.rng.random_range(0..target.n());
        let len = self.rng.random_range(0..=self.config.max_proof_bits);
        let bits = BitString::from_bits((0..len).map(|_| self.rng.random_bool(0.5)));
        Mutation::ProofRewrite(v, bits)
    }
}

/// Per-mutation record of a churn run.
#[derive(Clone, Debug)]
pub struct ChurnStep {
    /// The applied mutation.
    pub mutation: Mutation,
    /// Views whose output could change (what got dirtied).
    pub impact: usize,
    /// Verifiers actually re-run by the incremental pass.
    pub reverified: usize,
    /// Global verdict after the mutation.
    pub accepted: bool,
    /// First rejecting node, when rejected.
    pub witness: Option<usize>,
    /// Whether the from-scratch cross-check ran and agreed
    /// (`None` = not checked this step).
    pub matched_full: Option<bool>,
}

/// Aggregate outcome of [`run_churn`].
#[derive(Clone, Debug, Default)]
pub struct ChurnRun {
    /// Every applied step, in order.
    pub steps: Vec<ChurnStep>,
    /// From-scratch cross-checks performed.
    pub checks: usize,
    /// Cross-checks where incremental and full verification disagreed —
    /// any nonzero value is a correctness bug.
    pub mismatches: usize,
    /// Largest single-mutation impact set.
    pub max_impact: usize,
    /// Total verifiers re-run across all incremental passes.
    pub total_reverified: usize,
    /// Wall time spent in incremental apply+reverify, in nanoseconds.
    pub incremental_nanos: u128,
    /// Wall time spent in from-scratch cross-checks, in nanoseconds.
    pub full_nanos: u128,
    /// Whether the run stopped early because its wall budget expired
    /// (only possible through [`run_churn_within`]).
    pub timed_out: bool,
}

/// Drives `steps` mutations from a fresh [`ChurnStream`] through
/// `target`, incrementally re-verifying after every mutation and
/// cross-checking against from-scratch evaluation every `check_every`
/// steps (and on the final step; `0` disables periodic checks but keeps
/// the final one).
///
/// The cross-check compares the *entire* cached output vector — not
/// just the verdict — so a stale cached output at any node counts as a
/// mismatch even when it cannot flip the global decision. This is the
/// strongest form of the dirty-ball invariant: a node whose output
/// changed but was never dirtied cannot escape detection.
pub fn run_churn(
    target: &mut DynamicInstance,
    config: &ChurnConfig,
    steps: usize,
    check_every: usize,
) -> ChurnRun {
    run_churn_within(target, config, steps, check_every, &Deadline::none())
}

/// [`run_churn`] under a cooperative wall budget: the mutation loop
/// polls `deadline` before each step and stops early — flagging
/// [`ChurnRun::timed_out`] — once it has expired. Everything applied
/// before the stop is still cross-checked (the final-step check below
/// runs regardless), so a timed-out run's partial trace remains a
/// valid equivalence witness. With [`Deadline::none`] this is exactly
/// [`run_churn`].
pub fn run_churn_within(
    target: &mut DynamicInstance,
    config: &ChurnConfig,
    steps: usize,
    check_every: usize,
    deadline: &Deadline,
) -> ChurnRun {
    let mut stream = ChurnStream::new(*config);
    let mut run = ChurnRun::default();
    // Seed the cache so per-step reverified counts measure increments.
    target.reverify();
    for step in 1..=steps {
        if deadline.expired() {
            run.timed_out = true;
            break;
        }
        let Some(mutation) = stream.propose(target) else {
            break;
        };
        let started = Instant::now();
        let impact = match target.apply(&mutation) {
            Ok(impact) => impact.len(),
            // A stream proposal is valid by construction; a refusal here
            // is a bug worth surfacing as a failed check.
            Err(_) => {
                run.checks += 1;
                run.mismatches += 1;
                continue;
            }
        };
        let outcome = target.reverify();
        run.incremental_nanos += started.elapsed().as_nanos();

        let matched_full = (check_every > 0 && step.is_multiple_of(check_every))
            .then(|| cross_check(target, &mut run));

        run.max_impact = run.max_impact.max(impact);
        run.total_reverified += outcome.reverified;
        run.steps.push(ChurnStep {
            mutation,
            impact,
            reverified: outcome.reverified,
            accepted: outcome.accepted,
            witness: outcome.witness,
            matched_full,
        });
    }
    // The final applied mutation is always cross-checked, whether the
    // budget ran out, the stream dried up, or periodic checks were off.
    if let Some(last) = run.steps.last() {
        if last.matched_full.is_none() {
            let matched = cross_check(target, &mut run);
            run.steps
                .last_mut()
                .expect("just observed a last step")
                .matched_full = Some(matched);
        }
    }
    run
}

/// One from-scratch cross-check against the (clean) cached outputs,
/// with its cost and outcome folded into `run`.
fn cross_check(target: &DynamicInstance, run: &mut ChurnRun) -> bool {
    let started = Instant::now();
    let full = target.full_check();
    run.full_nanos += started.elapsed().as_nanos();
    let cached = target
        .cached_verdict()
        .expect("cross-checks run on a re-verified instance");
    let matched = cached == full;
    run.checks += 1;
    run.mismatches += usize::from(!matched);
    matched
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcp_core::{Instance, Proof, Scheme, View};
    use lcp_graph::generators;

    /// Radius-2 scheme reading everything in sight (equivalence stressor).
    struct Fingerprint;
    impl Scheme for Fingerprint {
        type Node = ();
        type Edge = ();
        fn name(&self) -> String {
            "fingerprint".into()
        }
        fn radius(&self) -> usize {
            2
        }
        fn holds(&self, _: &Instance) -> bool {
            true
        }
        fn prove(&self, inst: &Instance) -> Option<Proof> {
            Some(Proof::empty(inst.n()))
        }
        fn verify(&self, view: &View) -> bool {
            let mut h: u64 = view.center() as u64;
            for u in view.nodes() {
                h = h.wrapping_mul(1_000_003).wrapping_add(view.id(u).0);
                h = h.wrapping_mul(31).wrapping_add(view.dist(u) as u64);
                for b in view.proof(u).iter() {
                    h = h.wrapping_mul(2).wrapping_add(b as u64);
                }
                for &w in view.neighbors(u) {
                    h = h.wrapping_mul(131).wrapping_add(view.id(w).0);
                }
            }
            !h.is_multiple_of(3)
        }
    }

    #[test]
    fn streams_are_replayable() {
        let build =
            || DynamicInstance::seal(Fingerprint, Instance::unlabeled(generators::grid(3, 4)));
        let mut a = build();
        let mut b = build();
        let config = ChurnConfig::new(7);
        let ra = run_churn(&mut a, &config, 40, 8);
        let rb = run_churn(&mut b, &config, 40, 8);
        assert_eq!(ra.steps.len(), rb.steps.len());
        for (x, y) in ra.steps.iter().zip(&rb.steps) {
            assert_eq!(x.mutation, y.mutation);
            assert_eq!(x.accepted, y.accepted);
            assert_eq!(x.witness, y.witness);
        }
        assert_ne!(
            run_churn(&mut build(), &ChurnConfig::new(8), 40, 8)
                .steps
                .iter()
                .map(|s| s.mutation.clone())
                .collect::<Vec<_>>(),
            ra.steps
                .iter()
                .map(|s| s.mutation.clone())
                .collect::<Vec<_>>(),
            "different seeds diverge"
        );
    }

    #[test]
    fn churn_runs_stay_equivalent_to_full_checks() {
        for seed in 0..4 {
            let mut d =
                DynamicInstance::seal(Fingerprint, Instance::unlabeled(generators::cycle(14)));
            let run = run_churn(&mut d, &ChurnConfig::new(seed), 60, 1);
            assert_eq!(run.mismatches, 0, "seed {seed}: {run:?}");
            assert_eq!(run.checks, run.steps.len());
            assert!(run.total_reverified > 0);
        }
    }

    #[test]
    fn expired_deadlines_stop_the_churn_loop_cleanly() {
        use std::time::Duration;
        let mut d = DynamicInstance::seal(Fingerprint, Instance::unlabeled(generators::cycle(14)));
        let run = run_churn_within(
            &mut d,
            &ChurnConfig::new(5),
            60,
            1,
            &Deadline::after(Duration::ZERO),
        );
        assert!(run.timed_out);
        assert!(run.steps.is_empty(), "expired before the first step");
        // An unbounded token reproduces `run_churn` exactly.
        let mut a = DynamicInstance::seal(Fingerprint, Instance::unlabeled(generators::cycle(14)));
        let mut b = DynamicInstance::seal(Fingerprint, Instance::unlabeled(generators::cycle(14)));
        let full = run_churn(&mut a, &ChurnConfig::new(5), 20, 4);
        let within = run_churn_within(&mut b, &ChurnConfig::new(5), 20, 4, &Deadline::none());
        assert!(!within.timed_out);
        assert_eq!(full.steps.len(), within.steps.len());
        assert_eq!(full.mismatches, within.mismatches);
        for (x, y) in full.steps.iter().zip(&within.steps) {
            assert_eq!(x.mutation, y.mutation);
            assert_eq!(x.accepted, y.accepted);
        }
    }

    #[test]
    fn final_step_is_always_cross_checked() {
        let mut d = DynamicInstance::seal(Fingerprint, Instance::unlabeled(generators::path(6)));
        let run = run_churn(&mut d, &ChurnConfig::new(3), 10, 0);
        assert_eq!(run.checks, 1, "only the final check with check_every=0");
        assert_eq!(run.steps.last().unwrap().matched_full, Some(true));
        assert_eq!(run.mismatches, 0);
    }
}
