//! `bench_diff` — CI guard for committed benchmark snapshots.
//!
//! ```text
//! bench_diff <fresh.json> <committed.json> [--max-regression 0.25] [--keys slow,fast]
//! ```
//!
//! Compares the *relative* speedup (a slow reference path vs a fast
//! path, measured in the same run on the same machine) of a freshly
//! produced snapshot against the committed reference. Wall-clock
//! seconds are not comparable across machines, but the speedup ratio
//! is — a refactor that costs the fast path 25% of its advantage fails
//! the job regardless of runner hardware.
//!
//! The key pair defaults to the engine snapshot's
//! `naive_seconds`/`engine_seconds`; other series pass their own, e.g.
//! `--keys cycle_full_seconds,cycle_incremental_seconds` for the
//! dynamic-churn snapshot.
//!
//! **First-introduction tolerance:** a brand-new series has nothing to
//! diff against. When the committed snapshot file is absent, or it
//! exists but lacks the requested keys (an older snapshot predating the
//! series), the diff reports "no baseline" and exits 0 — CI only starts
//! guarding once a baseline lands. A missing or malformed *fresh*
//! snapshot is still an error: the bench that was supposed to produce
//! it just ran.
//!
//! Exit codes: `0` ok (including no-baseline), `1` usage/parse error,
//! `2` regression.

use std::process::exit;

/// Minimal extractor for the flat one-level BENCH json: finds `"key":
/// <number>` and parses the number (no string values contain keys).
fn field(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

struct Snapshot {
    slow_seconds: f64,
    fast_seconds: f64,
}

fn load(path: &str, slow_key: &str, fast_key: &str) -> Result<Snapshot, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let get = |key: &str| field(&json, key).ok_or_else(|| format!("{path}: missing \"{key}\""));
    Ok(Snapshot {
        slow_seconds: get(slow_key)?,
        fast_seconds: get(fast_key)?,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut max_regression = 0.25f64;
    let mut slow_key = "naive_seconds".to_string();
    let mut fast_key = "engine_seconds".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--max-regression" {
            let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                eprintln!("--max-regression needs a fraction (e.g. 0.25)");
                exit(1);
            };
            max_regression = v;
        } else if a == "--keys" {
            let Some((slow, fast)) = it.next().and_then(|v| v.split_once(',')) else {
                eprintln!("--keys needs a pair (e.g. naive_seconds,engine_seconds)");
                exit(1);
            };
            slow_key = slow.trim().to_string();
            fast_key = fast.trim().to_string();
        } else {
            paths.push(a.clone());
        }
    }
    let [fresh_path, committed_path] = paths.as_slice() else {
        eprintln!(
            "usage: bench_diff <fresh.json> <committed.json> \
             [--max-regression 0.25] [--keys slow,fast]"
        );
        exit(1);
    };

    // The fresh snapshot must exist and carry the series — the bench
    // producing it just ran, so anything missing here is a real failure.
    let fresh = match load(fresh_path, &slow_key, &fast_key) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            exit(1);
        }
    };

    // The committed baseline may legitimately not exist yet (first
    // introduction of a bench series) or predate the requested keys.
    if !std::path::Path::new(committed_path).exists() {
        println!(
            "no baseline: {committed_path} is not committed yet — \
             skipping the diff (commit the fresh snapshot to start guarding)"
        );
        exit(0);
    }
    let committed = match load(committed_path, &slow_key, &fast_key) {
        Ok(c) => c,
        Err(e) => {
            println!(
                "no baseline for this series ({e}) — \
                 skipping the diff (refresh the committed snapshot to start guarding)"
            );
            exit(0);
        }
    };

    // Machine-normalized throughput: the fast path's advantage over the
    // slow path measured in the same run.
    let fresh_speedup = fresh.slow_seconds / fresh.fast_seconds;
    let committed_speedup = committed.slow_seconds / committed.fast_seconds;
    let ratio = fresh_speedup / committed_speedup;
    println!(
        "{fast_key}: fresh {fresh_speedup:.1}x over {slow_key}, \
         committed {committed_speedup:.1}x, ratio {ratio:.2}"
    );
    if ratio < 1.0 - max_regression {
        eprintln!(
            "FAIL: speedup regressed by {:.0}% (allowed {:.0}%)",
            (1.0 - ratio) * 100.0,
            max_regression * 100.0
        );
        exit(2);
    }
    println!(
        "ok: within the {:.0}% regression budget",
        max_regression * 100.0
    );
}
