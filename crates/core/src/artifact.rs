//! Persistent skeleton artifacts: the disk-backed tier of core reuse.
//!
//! # Why
//!
//! A [`SkeletonCache`] deduplicates
//! skeleton builds *within* a process; every new process still pays the
//! full BFS bill on its first touch of each graph. For campaign shards
//! sweeping the same generated instances, a resident `lcp-serve` daemon
//! restarting, or a nightly matrix re-running the seed graphs, that cold
//! start is pure waste: the frozen core is already a flat little-endian
//! word image ([`docs/FORMAT.md`]), so it can be written to disk once and
//! mapped back by any later process with **zero deserialization**.
//!
//! An [`ArtifactStore`] stacks the two tiers:
//!
//! 1. in-process [`SkeletonCache`] lookup (full structural equality);
//! 2. on miss, open `dir/n{n}-r{r}-{fingerprint}.lcpc` — `mmap` + header
//!    / checksum / structure validation ([`FrozenCore::open`]);
//! 3. on miss or rejection, build from scratch and persist the result
//!    (atomic tmp-file + rename, so racing shards never expose a torn
//!    file — and since serialization is deterministic, racing writers
//!    produce identical bytes anyway).
//!
//! Every prepared core reports its [`CoreProvenance`] so services can
//! account for artifact effectiveness (`lcp-serve stats`, campaign
//! summaries) and CI can assert that warmed shards build nothing.
//!
//! A corrupt, truncated, or version-skewed file is **never** trusted:
//! validation rejects it with a precise [`ArtifactError`], the store
//! counts the rejection, warns on stderr, and transparently rebuilds
//! (overwriting the bad file). Verdicts and report bytes can therefore
//! never depend on artifact state — only wall-clock time can.
//!
//! [`docs/FORMAT.md`]: https://github.com/../docs/FORMAT.md

use crate::engine::{content_key, PreparedInstance, SkeletonCache};
use crate::frozen::{build_all, ArtifactError, FrozenCore, PortableLabel};
use crate::instance::Instance;
use crate::metrics;
use std::io::ErrorKind;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Where a [`PreparedInstance`]'s frozen core came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoreProvenance {
    /// Built in this process by a fresh BFS sweep.
    Built,
    /// Adopted from the in-process [`SkeletonCache`].
    CacheHit,
    /// Loaded (mapped) from an on-disk artifact file.
    ArtifactLoaded,
}

impl CoreProvenance {
    /// Stable snake_case name, used in serve stats and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            CoreProvenance::Built => "built",
            CoreProvenance::CacheHit => "cache_hit",
            CoreProvenance::ArtifactLoaded => "artifact_loaded",
        }
    }
}

/// The full `(instance, radius)` identity an artifact file is checked
/// against before it may be shared: the structural content key (graph
/// shape, ids, edge-label presence) paired with an FNV fold of the
/// *encoded label values* — the part the structural key deliberately
/// omits. Collisions across either component cannot cause a wrong share
/// silently corrupting verdicts in the way a cache can't: the cache
/// compares full content on hit, and the fingerprint is additionally
/// embedded in (and re-derived from) the file name, so a mismatched file
/// is simply never opened as this instance's artifact.
pub(crate) fn fingerprint<N: PortableLabel, E: PortableLabel>(
    inst: &Instance<N, E>,
    radius: usize,
) -> (u64, u64) {
    let structural = content_key(inst, radius);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |x: u64| {
        h = (h ^ x).wrapping_mul(0x0000_0100_0000_01b3);
    };
    mix(N::TAG);
    mix(E::TAG);
    let mut buf = Vec::new();
    for v in 0..inst.n() {
        buf.clear();
        inst.node_label(v).encode(&mut buf);
        mix(buf.len() as u64);
        for &w in &buf {
            mix(w);
        }
    }
    for (u, v) in inst.graph().edges() {
        if let Some(label) = inst.edge_label(u, v) {
            buf.clear();
            label.encode(&mut buf);
            mix(((u as u64) << 32) | v as u64);
            mix(buf.len() as u64);
            for &w in &buf {
                mix(w);
            }
        }
    }
    (structural, h)
}

/// Builds a fresh frozen core, with the same metrics accounting as
/// [`PreparedInstance::new`] — every from-scratch build in the process
/// shows up in `lcp_engine_prepares_total`, whatever tier requested it.
fn build_core<N, E>(inst: &Instance<N, E>, radius: usize) -> Arc<FrozenCore<N, E>>
where
    N: Clone + Send + Sync,
    E: Clone + Send + Sync,
{
    let started = std::time::Instant::now();
    let core = Arc::new(FrozenCore::from_built(radius, build_all(inst, radius)));
    metrics::PREPARES.inc();
    metrics::PREPARE_NS.observe(started.elapsed().as_nanos() as u64);
    core
}

/// A directory of frozen-core artifact files fronted by an in-process
/// [`SkeletonCache`] — the cross-process skeleton tier.
///
/// Thread-safe; campaign cells and serve workers share one store behind
/// an `Arc`. Files are immutable once renamed into place: a store never
/// modifies an existing artifact except to overwrite one that failed
/// validation.
#[derive(Debug)]
pub struct ArtifactStore {
    dir: PathBuf,
    cache: SkeletonCache,
    loads: AtomicUsize,
    writes: AtomicUsize,
    builds: AtomicUsize,
    rejects: AtomicUsize,
}

impl ArtifactStore {
    /// Opens (creating if needed) the artifact directory `dir`.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, ArtifactError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| ArtifactError::Io {
            path: dir.clone(),
            source: e,
        })?;
        Ok(ArtifactStore {
            dir,
            cache: SkeletonCache::new(),
            loads: AtomicUsize::new(0),
            writes: AtomicUsize::new(0),
            builds: AtomicUsize::new(0),
            rejects: AtomicUsize::new(0),
        })
    }

    /// The artifact directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The in-process cache tier (hit/miss counters live there).
    pub fn cache(&self) -> &SkeletonCache {
        &self.cache
    }

    /// Cores served from artifact files so far.
    pub fn loads(&self) -> usize {
        self.loads.load(Ordering::Relaxed)
    }

    /// Artifact files written so far.
    pub fn writes(&self) -> usize {
        self.writes.load(Ordering::Relaxed)
    }

    /// Cores built from scratch so far (cache and directory both missed).
    pub fn builds(&self) -> usize {
        self.builds.load(Ordering::Relaxed)
    }

    /// Artifact files rejected by validation so far.
    pub fn rejects(&self) -> usize {
        self.rejects.load(Ordering::Relaxed)
    }

    /// The canonical file path of `(n, radius, fingerprint)`. Embedding
    /// the fingerprint in the name makes the directory self-describing
    /// and collision-free across instances without any index file.
    pub fn path_for(&self, n: usize, radius: usize, fingerprint: (u64, u64)) -> PathBuf {
        self.dir.join(format!(
            "n{n}-r{radius}-{:016x}{:016x}.lcpc",
            fingerprint.0, fingerprint.1
        ))
    }

    /// Prepares `inst` at `radius` through the two-tier hierarchy,
    /// reporting where the core came from.
    ///
    /// Hit/miss accounting on the embedded [`SkeletonCache`] is
    /// identical to a plain cache's: a disk load and a from-scratch
    /// build both count as one cache miss, so campaign reports stay
    /// byte-identical whether or not an artifact directory is attached.
    pub fn prepare<'i, N, E>(
        &self,
        inst: &'i Instance<N, E>,
        radius: usize,
    ) -> (PreparedInstance<'i, N, E>, CoreProvenance)
    where
        N: Clone + PartialEq + Send + Sync + PortableLabel + 'static,
        E: Clone + PartialEq + Send + Sync + PortableLabel + 'static,
    {
        if let Some(core) = self.cache.find_core(inst, radius) {
            self.cache.record_hit();
            return (
                PreparedInstance::from_core(inst, core),
                CoreProvenance::CacheHit,
            );
        }
        self.cache.record_miss();

        let fp = fingerprint(inst, radius);
        let path = self.path_for(inst.n(), radius, fp);
        match FrozenCore::<N, E>::open(&path, Some(fp)) {
            Ok(core) => {
                self.loads.fetch_add(1, Ordering::Relaxed);
                metrics::ARTIFACT_LOADS.inc();
                let core = self.cache.insert_core(inst, radius, Arc::new(core));
                return (
                    PreparedInstance::from_core(inst, core),
                    CoreProvenance::ArtifactLoaded,
                );
            }
            Err(ArtifactError::Io { ref source, .. }) if source.kind() == ErrorKind::NotFound => {
                // First touch of this instance on this machine: build
                // below and persist for the next process.
            }
            Err(err) => {
                self.rejects.fetch_add(1, Ordering::Relaxed);
                metrics::ARTIFACT_REJECTS.inc();
                eprintln!("warning: rejecting skeleton artifact ({err}); rebuilding");
            }
        }

        let core = build_core(inst, radius);
        self.builds.fetch_add(1, Ordering::Relaxed);
        match core.save(&path, fp) {
            Ok(()) => {
                self.writes.fetch_add(1, Ordering::Relaxed);
                metrics::ARTIFACT_WRITES.inc();
            }
            Err(err) => {
                // Persistence is best-effort: a read-only or full disk
                // degrades to per-process builds, never to a failure.
                eprintln!("warning: could not persist skeleton artifact ({err})");
            }
        }
        let core = self.cache.insert_core(inst, radius, core);
        (
            PreparedInstance::from_core(inst, core),
            CoreProvenance::Built,
        )
    }

    /// Ensures `(inst, radius)`'s artifact file exists (building and
    /// writing it if needed) without keeping anything resident beyond
    /// the cache entry — the `--warm-artifacts` primitive.
    pub fn warm<N, E>(&self, inst: &Instance<N, E>, radius: usize) -> CoreProvenance
    where
        N: Clone + PartialEq + Send + Sync + PortableLabel + 'static,
        E: Clone + PartialEq + Send + Sync + PortableLabel + 'static,
    {
        let (_, provenance) = self.prepare(inst, radius);
        provenance
    }
}

/// Where a cell gets its prepared cores from — the single entry point
/// threaded through [`DynScheme`](crate::dynamic::DynScheme).
///
/// The old `Option<Arc<SkeletonCache>>` plumbing collapses into this
/// enum: `None` is [`ArtifactSource::BuildFresh`], `Some(cache)` is
/// [`ArtifactSource::Cache`], and the new disk tier is
/// [`ArtifactSource::MappedDir`]. All three produce observably identical
/// [`PreparedInstance`]s; only provenance and wall-clock differ.
#[derive(Clone, Debug, Default)]
pub enum ArtifactSource {
    /// No sharing: every preparation runs its own BFS sweep.
    #[default]
    BuildFresh,
    /// In-process sharing through a [`SkeletonCache`].
    Cache(Arc<SkeletonCache>),
    /// Two-tier sharing: in-process cache over an artifact directory.
    MappedDir(Arc<ArtifactStore>),
}

impl ArtifactSource {
    /// Prepares `inst` at `radius` through this source, reporting where
    /// the core came from.
    pub fn prepare<'i, N, E>(
        &self,
        inst: &'i Instance<N, E>,
        radius: usize,
    ) -> (PreparedInstance<'i, N, E>, CoreProvenance)
    where
        N: Clone + PartialEq + Send + Sync + PortableLabel + 'static,
        E: Clone + PartialEq + Send + Sync + PortableLabel + 'static,
    {
        match self {
            ArtifactSource::BuildFresh => (
                PreparedInstance::from_core(inst, build_core(inst, radius)),
                CoreProvenance::Built,
            ),
            ArtifactSource::Cache(cache) => {
                if let Some(core) = cache.find_core(inst, radius) {
                    cache.record_hit();
                    (
                        PreparedInstance::from_core(inst, core),
                        CoreProvenance::CacheHit,
                    )
                } else {
                    cache.record_miss();
                    let core = cache.insert_core(inst, radius, build_core(inst, radius));
                    (
                        PreparedInstance::from_core(inst, core),
                        CoreProvenance::Built,
                    )
                }
            }
            ArtifactSource::MappedDir(store) => store.prepare(inst, radius),
        }
    }

    /// Drops `(inst, radius)`'s core from whatever in-process tier this
    /// source carries, reporting whether anything was resident. Artifact
    /// *files* are never deleted — they are the durable tier.
    pub fn evict<N, E>(&self, inst: &Instance<N, E>, radius: usize) -> bool
    where
        N: PartialEq + Send + Sync + 'static,
        E: PartialEq + Send + Sync + 'static,
    {
        match self {
            ArtifactSource::BuildFresh => false,
            ArtifactSource::Cache(cache) => cache.remove(inst, radius),
            ArtifactSource::MappedDir(store) => store.cache.remove(inst, radius),
        }
    }

    /// The in-process cache tier, when this source has one.
    pub fn cache(&self) -> Option<&SkeletonCache> {
        match self {
            ArtifactSource::BuildFresh => None,
            ArtifactSource::Cache(cache) => Some(cache),
            ArtifactSource::MappedDir(store) => Some(&store.cache),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proof::Proof;
    use lcp_graph::generators;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lcp-artifact-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_round_trips_through_disk() {
        let dir = scratch_dir("roundtrip");
        let inst = Instance::unlabeled(generators::grid(4, 5));
        let proof = Proof::empty(inst.n());

        let store = ArtifactStore::open(&dir).unwrap();
        let (first, prov) = store.prepare(&inst, 2);
        assert_eq!(prov, CoreProvenance::Built);
        assert_eq!((store.builds(), store.writes(), store.loads()), (1, 1, 0));
        let (again, prov) = store.prepare(&inst, 2);
        assert_eq!(prov, CoreProvenance::CacheHit);
        assert_eq!(store.cache().hits(), 1);

        // A second "process": a fresh store over the same directory
        // loads the file instead of building.
        let cold = ArtifactStore::open(&dir).unwrap();
        let (loaded, prov) = cold.prepare(&inst, 2);
        assert_eq!(prov, CoreProvenance::ArtifactLoaded);
        assert_eq!((cold.builds(), cold.loads()), (0, 1));
        for v in 0..inst.n() {
            assert_eq!(loaded.bind(v, &proof), first.bind(v, &proof), "view {v}");
            assert_eq!(again.bind(v, &proof), first.bind(v, &proof), "view {v}");
        }

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_artifacts_are_rejected_and_rebuilt() {
        let dir = scratch_dir("corrupt");
        let inst = Instance::unlabeled(generators::cycle(12));
        let store = ArtifactStore::open(&dir).unwrap();
        let (_, prov) = store.prepare(&inst, 1);
        assert_eq!(prov, CoreProvenance::Built);

        let fp = fingerprint(&inst, 1);
        let path = store.path_for(inst.n(), 1, fp);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();

        let cold = ArtifactStore::open(&dir).unwrap();
        let (prep, prov) = cold.prepare(&inst, 1);
        assert_eq!(prov, CoreProvenance::Built, "corrupt file must not load");
        assert_eq!(cold.rejects(), 1);
        assert_eq!(prep.n(), inst.n());

        // The rebuild overwrote the damaged file with a valid one.
        let healed = ArtifactStore::open(&dir).unwrap();
        let (_, prov) = healed.prepare(&inst, 1);
        assert_eq!(prov, CoreProvenance::ArtifactLoaded);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn distinct_label_values_get_distinct_artifacts() {
        // content_key ignores label values; the fingerprint must not.
        let g = generators::path(6);
        let a: Instance<u8> = Instance::with_node_data(g.clone(), vec![1u8; 6]);
        let b: Instance<u8> = Instance::with_node_data(g, vec![2u8; 6]);
        assert_eq!(content_key(&a, 1), content_key(&b, 1));
        assert_ne!(fingerprint(&a, 1), fingerprint(&b, 1));

        let dir = scratch_dir("labels");
        let store = ArtifactStore::open(&dir).unwrap();
        let (pa, _) = store.prepare(&a, 1);
        let (pb, _) = store.prepare(&b, 1);
        assert_eq!(store.builds(), 2, "different label values never share");
        let proof = Proof::empty(6);
        assert_ne!(
            pa.bind(3, &proof).node_label(pa.bind(3, &proof).center()),
            pb.bind(3, &proof).node_label(pb.bind(3, &proof).center()),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_source_prepares_identically() {
        let inst = Instance::unlabeled(generators::grid(3, 4));
        let proof = Proof::empty(inst.n());
        let dir = scratch_dir("sources");

        let fresh = ArtifactSource::BuildFresh;
        let cached = ArtifactSource::Cache(Arc::new(SkeletonCache::new()));
        let mapped = ArtifactSource::MappedDir(Arc::new(ArtifactStore::open(&dir).unwrap()));

        let (p0, prov0) = fresh.prepare(&inst, 2);
        let (p1, prov1) = cached.prepare(&inst, 2);
        let (p2, prov2) = mapped.prepare(&inst, 2);
        assert_eq!(
            (prov0, prov1, prov2),
            (
                CoreProvenance::Built,
                CoreProvenance::Built,
                CoreProvenance::Built
            )
        );
        for v in 0..inst.n() {
            assert_eq!(p0.bind(v, &proof), p1.bind(v, &proof), "view {v}");
            assert_eq!(p0.bind(v, &proof), p2.bind(v, &proof), "view {v}");
        }

        // Second round: each stateful source reports its tier.
        let (_, prov1) = cached.prepare(&inst, 2);
        let (_, prov2) = mapped.prepare(&inst, 2);
        assert_eq!(
            (prov1, prov2),
            (CoreProvenance::CacheHit, CoreProvenance::CacheHit)
        );

        assert!(!fresh.evict(&inst, 2));
        assert!(cached.evict(&inst, 2));
        assert!(mapped.evict(&inst, 2));
        // After eviction the mapped source reloads from disk, not a BFS.
        let (_, prov2) = mapped.prepare(&inst, 2);
        assert_eq!(prov2, CoreProvenance::ArtifactLoaded);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
