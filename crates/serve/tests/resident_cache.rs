//! The residency guarantee, observed over the wire: once a cell is
//! prepared, repeated `verify`/`tamper-probe` requests issue **zero**
//! skeleton rebuilds — the shared cache's miss counter stays flat while
//! its hit counter grows.

use lcp_core::json::Json;
use lcp_graph::families::GraphFamily;
use lcp_schemes::registry::Polarity;
use lcp_serve::{CellCoord, Client, Server, ServerConfig};

fn coord() -> CellCoord {
    CellCoord {
        scheme: "bipartite".into(),
        family: GraphFamily::Cycle,
        n: 600,
        seed: 7,
        polarity: Polarity::Yes,
    }
}

fn skeleton_counter(stats: &Json, key: &str) -> u64 {
    stats
        .get("skeletons")
        .and_then(|s| s.get(key))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats response lacks skeletons.{key}"))
}

#[test]
fn resident_verify_rebuilds_no_skeletons() {
    let handle = Server::bind(ServerConfig::default())
        .expect("bind")
        .spawn()
        .expect("spawn");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let coord = coord();

    let prepared = client.prepare(&coord).expect("prepare");
    assert_eq!(prepared.get("holds").and_then(Json::as_bool), Some(true));

    let s0 = client.stats().expect("stats");
    let misses = skeleton_counter(&s0, "misses");
    assert_eq!(misses, 1, "prepare builds the skeleton core exactly once");
    let hits0 = skeleton_counter(&s0, "hits");

    let verdict = client.verify(&coord, None).expect("verify");
    assert_eq!(
        verdict.get("check").and_then(Json::as_str),
        Some("completeness")
    );
    assert_eq!(verdict.get("accepted").and_then(Json::as_bool), Some(true));

    let s1 = client.stats().expect("stats");
    assert_eq!(
        skeleton_counter(&s1, "misses"),
        misses,
        "a resident verify must not rebuild skeletons"
    );
    let hits1 = skeleton_counter(&s1, "hits");
    assert!(hits1 > hits0, "the resident verify served from the cache");

    client.verify(&coord, None).expect("second verify");
    client.tamper_probe(&coord, 16, 3).expect("tamper-probe");
    let s2 = client.stats().expect("stats");
    assert_eq!(
        skeleton_counter(&s2, "misses"),
        misses,
        "repeated resident requests never miss"
    );
    assert!(skeleton_counter(&s2, "hits") > hits1);
    assert_eq!(s2.get("loads").and_then(Json::as_u64), Some(1));

    handle.stop().expect("clean drain");
}

#[test]
fn unknown_cells_come_back_as_typed_errors() {
    let handle = Server::bind(ServerConfig::default())
        .expect("bind")
        .spawn()
        .expect("spawn");
    let mut client = Client::connect(handle.addr()).expect("connect");

    let mut bad = coord();
    bad.scheme = "no-such-scheme".into();
    let err = client.prepare(&bad).expect_err("unknown scheme");
    assert_eq!(err.kind(), Some("unknown-scheme"));

    // The connection survives a typed error.
    client.prepare(&coord()).expect("prepare after error");
    handle.stop().expect("clean drain");
}
