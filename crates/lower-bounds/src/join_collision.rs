//! The §6.1 / §6.2 join-collision attacks.
//!
//! Both lower bounds use the `⊙` construction: `G₁ ⊙ G₂` consists of
//! shifted canonical copies `C(G₁, k)` (identifiers `k+1..2k`) and
//! `C(G₂, 2k)` (identifiers `2k+1..3k`) joined by the fresh path
//! `(k+1, 1, 2, …, k, 2k+1)`.
//!
//! * §6.1: `F_k` = asymmetric connected graphs. `G ⊙ G` is *symmetric*;
//!   `G₁ ⊙ G₂` with `G₁ ≇ G₂` is asymmetric. `log |F_k| = Θ(k²)`, so an
//!   `o(n²)`-bit scheme must give two distinct members the same proofs on
//!   the window `{1, …, 2r+1}` — and the spliced hybrid is accepted.
//! * §6.2: `F_k` = rooted trees (`log |F_k| = Θ(k)`, OEIS A000081), `k`
//!   even; `G ⊙ G` has a fixpoint-free symmetry, the hybrid does not.

use crate::CounterExample;
use lcp_core::{BitString, Instance, Proof, Scheme};
use lcp_graph::{Graph, GraphError, NodeId};
use std::collections::BTreeMap;

/// Builds `G₁ ⊙ G₂` from two *canonical* halves (identifiers `1..=k`,
/// attachment node at index 0).
///
/// # Errors
///
/// Propagates graph construction errors (only possible on malformed
/// halves).
pub fn join(g1: &Graph, g2: &Graph) -> Result<Graph, GraphError> {
    let k = g1.n();
    assert_eq!(g2.n(), k, "halves must have equal size");
    let mut g = Graph::with_capacity(3 * k);
    // Path nodes: identifiers 1..=k at indices 0..k.
    for i in 1..=k as u64 {
        g.add_node(NodeId(i))?;
    }
    // G1 copy: identifiers k+1..=2k at indices k..2k.
    for v in 0..k {
        g.add_node(NodeId(g1.id(v).0 + k as u64))?;
    }
    // G2 copy: identifiers 2k+1..=3k at indices 2k..3k.
    for v in 0..k {
        g.add_node(NodeId(g2.id(v).0 + 2 * k as u64))?;
    }
    for (u, v) in g1.edges() {
        g.add_edge(k + u, k + v)?;
    }
    for (u, v) in g2.edges() {
        g.add_edge(2 * k + u, 2 * k + v)?;
    }
    // The path (k+1, 1, 2, …, k, 2k+1).
    g.add_edge(k, 0)?; // k+1 – 1
    for i in 0..k - 1 {
        g.add_edge(i, i + 1)?;
    }
    g.add_edge(k - 1, 2 * k)?; // k – 2k+1
    Ok(g)
}

/// The §6.1 family: canonical forms of asymmetric connected graphs on
/// `k` nodes (exhaustive for `k ≤ 6`, seeded sampling beyond).
///
/// # Errors
///
/// Propagates enumeration errors for out-of-range `k`.
pub fn asymmetric_family(
    k: usize,
    max_members: usize,
    rng: &mut rand::rngs::StdRng,
) -> Result<Vec<Graph>, GraphError> {
    let raw = if k <= lcp_graph::enumerate::MAX_EXHAUSTIVE_NODES {
        lcp_graph::enumerate::asymmetric_connected_graphs(k)?
    } else {
        lcp_graph::enumerate::sample_asymmetric_connected(k, max_members, 100_000, rng)?
    };
    raw.into_iter()
        .take(max_members)
        .map(|g| lcp_graph::iso::canonical_form(&g))
        .collect()
}

/// The §6.2 family: all rooted trees on `k` nodes, materialized with the
/// root at identifier 1 (index 0).
///
/// # Errors
///
/// Propagates enumeration errors for out-of-range `k`.
pub fn rooted_tree_family(k: usize, max_members: usize) -> Result<Vec<Graph>, GraphError> {
    Ok(lcp_graph::tree::rooted_trees(k)?
        .into_iter()
        .take(max_members)
        .map(|seq| seq.to_graph(0).0)
        .collect())
}

/// Outcome of a join-collision attack.
#[derive(Clone, Debug)]
pub enum JoinOutcome {
    /// A spliced hybrid was accepted although the property fails on it.
    Fooled(Box<CounterExample>),
    /// All window patterns were distinct — the proofs carry enough
    /// information (expected for the honest `Θ(n²)` / `Θ(n)` schemes).
    NoCollision {
        /// Family members whose joined instance was provable.
        candidates: usize,
        /// Distinct window patterns observed.
        distinct_windows: usize,
    },
    /// A collision existed but the hybrid satisfied the property (should
    /// not happen for these families; kept for robustness).
    HybridIsYes,
    /// A collision existed but some node rejected the spliced proof.
    SchemeSurvived {
        /// Rejecting node indices.
        rejecting: Vec<usize>,
    },
    /// The prover failed on every joined yes-instance.
    ProverFailed,
    /// A joined yes-instance's *honest* proof was rejected — a scheme
    /// bug surfaced by the attack's sanity sweep, with the witness node
    /// (previously a debug-only assertion that discarded it).
    HonestProofRejected {
        /// Index of the family member whose joined instance failed.
        member: usize,
        /// The rejecting node.
        node: usize,
    },
}

impl JoinOutcome {
    /// Whether the attack produced a counterexample.
    pub fn fooled(&self) -> bool {
        matches!(self, JoinOutcome::Fooled(_))
    }
}

/// Runs the join-collision attack: prove `Gᵢ ⊙ Gᵢ` for every family
/// member, look for two members with identical proofs on the path window
/// `{1, …, 2r+1}`, splice, and evaluate.
///
/// `family` must contain canonical halves (see [`asymmetric_family`] /
/// [`rooted_tree_family`]); the half size `k` must satisfy `k ≥ 2r + 1`.
pub fn join_collision_attack<S>(scheme: &S, family: &[Graph]) -> JoinOutcome
where
    S: Scheme<Node = (), Edge = ()> + Sync,
{
    let r = scheme.radius();
    let window = 2 * r + 1;
    assert!(!family.is_empty(), "family must be nonempty");
    let k = family[0].n();
    assert!(
        k >= window,
        "half size {k} must cover the window {window} (k ≥ 2r+1)"
    );

    let mut seen: BTreeMap<Vec<BitString>, usize> = BTreeMap::new();
    let mut proofs: Vec<Option<Proof>> = Vec::with_capacity(family.len());
    let mut candidates = 0usize;
    let mut collision: Option<(usize, usize)> = None;

    for (i, half) in family.iter().enumerate() {
        let joined = join(half, half).expect("canonical halves join cleanly");
        let inst = Instance::unlabeled(joined);
        let proof = scheme.prove(&inst);
        if let Some(p) = &proof {
            if let Some(node) = lcp_core::evaluate_until_reject(scheme, &inst, p) {
                return JoinOutcome::HonestProofRejected { member: i, node };
            }
            candidates += 1;
            let key: Vec<BitString> = (0..window).map(|v| p.get(v).to_bitstring()).collect();
            if let Some(&other) = seen.get(&key) {
                collision = Some((other, i));
                proofs.push(proof);
                break;
            }
            seen.insert(key, i);
        }
        proofs.push(proof);
    }

    if candidates == 0 {
        return JoinOutcome::ProverFailed;
    }
    let Some((i, j)) = collision else {
        return JoinOutcome::NoCollision {
            candidates,
            distinct_windows: seen.len(),
        };
    };

    // Splice: G_i's copy + shared path/window from i, far path + G_j's
    // copy from j — the §6.1 recipe.
    let hybrid_graph = join(&family[i], &family[j]).expect("halves join cleanly");
    let pi = proofs[i].as_ref().expect("collision implies proof");
    let pj = proofs[j].as_ref().expect("collision implies proof");
    let proof = Proof::from_fn(3 * k, |v| {
        if v < window {
            pi.get(v).to_bitstring() // common window (equal in both donors)
        } else if v < k {
            pj.get(v).to_bitstring() // far path segment, donor j
        } else if v < 2 * k {
            pi.get(v).to_bitstring() // G_i copy
        } else {
            pj.get(v).to_bitstring() // G_j copy
        }
    });
    let hybrid = Instance::unlabeled(hybrid_graph);
    if scheme.holds(&hybrid) {
        return JoinOutcome::HybridIsYes;
    }
    let verdict = lcp_core::engine::prepare(scheme, &hybrid).evaluate(scheme, &proof);
    if verdict.accepted() {
        JoinOutcome::Fooled(Box::new(CounterExample {
            instance: hybrid,
            proof,
            verdict,
        }))
    } else {
        JoinOutcome::SchemeSurvived {
            rejecting: verdict.rejecting(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcp_graph::iso;

    #[test]
    fn join_layout_matches_the_paper() {
        let half = lcp_graph::generators::path(3); // canonical enough: ids 1..3
        let g = join(&half, &half).unwrap();
        assert_eq!(g.n(), 9);
        // Path (k+1, 1, 2, …, k, 2k+1) with k = 3: 4–1–2–3–7.
        let idx = |id: u64| g.index_of(NodeId(id)).unwrap();
        assert!(g.has_edge(idx(4), idx(1)));
        assert!(g.has_edge(idx(1), idx(2)));
        assert!(g.has_edge(idx(2), idx(3)));
        assert!(g.has_edge(idx(3), idx(7)));
    }

    #[test]
    fn doubled_half_is_symmetric_mixed_is_not() {
        // Use 7-node asymmetric sampled graphs.
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let fam = asymmetric_family(7, 4, &mut rng).unwrap();
        assert!(fam.len() >= 2);
        let same = join(&fam[0], &fam[0]).unwrap();
        assert!(iso::is_symmetric(&same) || same.n() > 16, "G⊙G symmetric");
        // n = 21 > MAX_CANON_NODES, so check with the automorphism search
        // directly (refinement-pruned, fine at this size).
        assert!(iso::nontrivial_automorphism(&same).is_some());
        let mixed = join(&fam[0], &fam[1]).unwrap();
        assert!(iso::nontrivial_automorphism(&mixed).is_none());
    }
    use rand::SeedableRng;

    #[test]
    fn doubled_tree_has_fixpoint_free_symmetry_iff_equal() {
        let fam = rooted_tree_family(4, 10).unwrap(); // k even
        let same = join(&fam[0], &fam[0]).unwrap();
        assert!(iso::fixpoint_free_automorphism(&same).is_some());
        let mixed = join(&fam[0], &fam[1]).unwrap();
        assert!(iso::fixpoint_free_automorphism(&mixed).is_none());
    }

    #[test]
    fn tree_families_are_complete() {
        assert_eq!(rooted_tree_family(6, 1000).unwrap().len(), 20); // A000081(6)
    }
}
