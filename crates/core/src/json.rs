//! Minimal JSON reading for the workspace's report artifacts.
//!
//! The campaign, churn, and bench reports are *written* by hand (flat,
//! deterministic layouts — see `lcp-conformance`); this module is the
//! matching reader, used by the CI fan-in tools (`campaign_merge`, the
//! `trend` history bin, `bench_diff`) to fold those artifacts back
//! together. It is deliberately tiny: a recursive-descent parser into a
//! [`Json`] tree plus typed accessors, no serialization framework.
//!
//! Numbers keep their **raw text** ([`Json::Num`]): campaign seeds are
//! full-range `u64`s and wall times `u128`s, so round-tripping through
//! `f64` would corrupt them. Accessors parse on demand into the type the
//! caller wants.
//!
//! ```
//! use lcp_core::json::Json;
//!
//! let doc = Json::parse(r#"{ "seed": 7, "cells": [ { "ok": true } ] }"#).unwrap();
//! assert_eq!(doc.get("seed").and_then(Json::as_u64), Some(7));
//! let cells = doc.get("cells").and_then(Json::as_array).unwrap();
//! assert_eq!(cells[0].get("ok").and_then(Json::as_bool), Some(true));
//! ```

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw text (parse via [`Json::as_u64`],
    /// [`Json::as_u128`], [`Json::as_usize`], or [`Json::as_f64`]).
    Num(String),
    /// A string, with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order (duplicate keys keep the first).
    Obj(Vec<(String, Json)>),
}

/// A parse failure with its byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Quotes and escapes `s` as a JSON string literal — the one escaper
/// every hand-rolled artifact writer in the workspace shares, matching
/// exactly what [`Json::parse`] resolves (`"`, `\`, `\n`, `\t`, `\r`,
/// and `\u00xx` for the remaining control characters).
pub fn escape(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns the first syntax error with its byte offset.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number parsed as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number parsed as `u128`, if this is a non-negative integer.
    pub fn as_u128(&self) -> Option<u128> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number parsed as `usize`, if this is a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number parsed as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields in document order, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { at: self.pos, msg }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ascii")
            .to_string();
        Ok(Json::Num(raw))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: expect \uDC00–\uDFFF.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                self.eat(b'u', "expected low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(ch)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                            // hex4 leaves pos one past the last digit;
                            // skip the shared `pos += 1` below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is valid UTF-8:
                    // it came in as &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let ch = rest.chars().next().expect("peeked non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// Reads exactly four hex digits, returning their value; leaves the
    /// cursor one past the last digit.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a') as u32 + 10,
                Some(b @ b'A'..=b'F') => (b - b'A') as u32 + 10,
                _ => return Err(self.err("expected four hex digits")),
            };
            value = (value << 4) | d;
            self.pos += 1;
        }
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_report_shapes() {
        let doc = Json::parse(
            r#"{
  "version": 1,
  "seed": 18446744073709551615,
  "profile": "smoke",
  "parallel": true,
  "summary": { "cells": 2, "passed": 1, "failed": 0, "skipped": 1 },
  "schemes": [
    { "id": "eulerian", "measured_class": null,
      "cells": [ { "n": 8, "proof_bits": 0, "detail": "a\"b\\c\n" } ] }
  ]
}"#,
        )
        .unwrap();
        // Full-range u64 seeds survive (no f64 round-trip).
        assert_eq!(doc.get("seed").and_then(Json::as_u64), Some(u64::MAX));
        assert_eq!(doc.get("profile").and_then(Json::as_str), Some("smoke"));
        assert_eq!(doc.get("parallel").and_then(Json::as_bool), Some(true));
        let schemes = doc.get("schemes").and_then(Json::as_array).unwrap();
        assert_eq!(schemes[0].get("measured_class"), Some(&Json::Null));
        let cells = schemes[0].get("cells").and_then(Json::as_array).unwrap();
        assert_eq!(
            cells[0].get("detail").and_then(Json::as_str),
            Some("a\"b\\c\n")
        );
    }

    #[test]
    fn escapes_round_trip() {
        let doc = Json::parse(r#""\u0007 \u00e9 \ud83e\udd80 \t""#).unwrap();
        assert_eq!(doc.as_str(), Some("\u{7} é 🦀 \t"));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        for s in ["", "plain", "a\"b\\c\n\t\r", "\u{7}\u{1f}", "é 🦀"] {
            let doc = Json::parse(&escape(s)).unwrap();
            assert_eq!(doc.as_str(), Some(s), "escape({s:?})");
        }
        assert_eq!(escape("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn numbers_keep_raw_text() {
        assert_eq!(Json::parse("3.25").unwrap().as_f64(), Some(3.25));
        assert_eq!(Json::parse("-2").unwrap().as_u64(), None);
        assert_eq!(Json::parse("42").unwrap().as_usize(), Some(42));
        assert_eq!(
            Json::parse("340282366920938463463374607431768211455")
                .unwrap()
                .as_u128(),
            Some(u128::MAX)
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"\\x\"",
            "{\"a\":}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
