//! # `lcp-conformance` — the seeded conformance campaign
//!
//! Table 1 of the paper is a *matrix*: every scheme against every graph
//! class with a claimed proof-size bound. This crate makes that matrix
//! executable: it sweeps every entry of the scheme registry
//! ([`lcp_schemes::registry`], extended with `lcp-logic`'s Σ¹₁ scheme)
//! across a seeded grid of graph families, sizes, and polarities, and on
//! each cell runs
//!
//! * **completeness** on yes-instances (honest proof accepted
//!   everywhere, size recorded),
//! * **bounded exhaustive soundness** on small no-instances (every
//!   proof up to the bit budget rejected somewhere),
//! * **adversarial bit-flip probing** — seeded hill-climbing proof
//!   search on larger no-instances, and single-bit tamper probes
//!   against honest proofs,
//! * **measured-vs-claimed proof size**: per scheme, the `(n, bits)`
//!   points of the yes cells are fitted with
//!   [`lcp_core::harness::classify_growth`] and compared against the
//!   paper's claimed bound (an upper bound: measuring *smaller* passes).
//!
//! Everything runs on the cached-view engine through the type-erased
//! [`DynScheme`] layer; with the `parallel` feature (default) the cells
//! fan out across cores. The report is deterministic in the
//! configuration: cells carry their own seeds (derived from the campaign
//! seed and the cell coordinates), results are reassembled in matrix
//! order, and [`Report::to_json`] with `include_timing = false` is
//! byte-identical across runs, machines, and thread schedules — the
//! property CI and the determinism test pin.

pub mod checkpoint;
pub mod churn;
pub mod merge;
pub mod metrics;

use lcp_core::dynamic::{DynScheme, TamperProbe};
use lcp_core::harness::{
    classify_growth, CompletenessError, GrowthClass, SizePoint, Soundness, SoundnessError,
};
use lcp_core::{
    ArtifactSource, ArtifactStore, BatchPolicy, CoreProvenance, Deadline, Scheme, SkeletonCache,
};
use lcp_graph::families::GraphFamily;
use lcp_logic::{formulas, Sigma11Scheme};
use lcp_schemes::registry::{self, CellRequest, Polarity, SchemeEntry};
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[cfg(feature = "parallel")]
use rayon::prelude::*;

// ---------------------------------------------------------------------
// Registry (lcp-schemes + out-of-crate schemes)
// ---------------------------------------------------------------------

fn b_sigma11(req: &CellRequest) -> Option<DynScheme> {
    use GraphFamily::*;
    if !matches!(req.family, Path | Cycle | Grid | Tree) {
        return None;
    }
    // Every connected graph has an independent dominating set (any
    // maximal independent set), so the property has no no-instances
    // inside the connected promise.
    match req.polarity {
        Polarity::Yes => {
            let g = req.family.generate(req.n, req.seed);
            let scheme = Sigma11Scheme::new(formulas::independent_dominating_set(), |g| {
                formulas::independent_dominating_witness(g)
            });
            Some(DynScheme::seal(scheme, lcp_core::Instance::unlabeled(g)))
        }
        Polarity::No => None,
    }
}

/// The campaign's scheme registry: everything in
/// [`lcp_schemes::registry::all`] plus the Σ¹₁ scheme from `lcp-logic`.
pub fn campaign_registry() -> Vec<SchemeEntry> {
    let mut entries = registry::all();
    let sigma_radius = Sigma11Scheme::new(formulas::independent_dominating_set(), |g| {
        formulas::independent_dominating_witness(g)
    })
    .radius();
    entries.push(SchemeEntry {
        id: "sigma11-independent-dominating",
        title: "monadic Σ¹₁ (indep. dominating)",
        paper_row: "1(a) §7.5",
        claimed_bound: "O(log n)",
        claimed_growth: GrowthClass::Logarithmic,
        families: &[
            GraphFamily::Path,
            GraphFamily::Cycle,
            GraphFamily::Grid,
            GraphFamily::Tree,
        ],
        radius: sigma_radius,
        max_n: 32,
        builder: b_sigma11,
    });
    entries
}

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

/// Preset campaign sizes and budgets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// The CI profile: small sizes, modest budgets, < 1 min.
    Smoke,
    /// The nightly profile: wider size spread, deeper adversarial
    /// searches.
    Full,
}

impl Profile {
    /// Stable name for reports and `--profile`.
    pub fn name(self) -> &'static str {
        match self {
            Profile::Smoke => "smoke",
            Profile::Full => "full",
        }
    }

    /// Parses a [`Self::name`].
    pub fn parse(s: &str) -> Option<Profile> {
        match s {
            "smoke" => Some(Profile::Smoke),
            "full" => Some(Profile::Full),
            _ => None,
        }
    }
}

/// One shard of a horizontally split campaign: this process runs the
/// matrix cells whose global coordinate is ≡ `index` (mod `count`).
///
/// The partition is over the *shared* coordinate enumeration (identical
/// for static and churn campaigns), and cell seeds depend only on cell
/// coordinates, so the union of all `count` shard reports is
/// byte-identical to the unsharded report (modulo timing) — the
/// invariant `campaign_merge` rebuilds and the sharding test suite pins.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Shard {
    /// This shard's index, in `0..count`.
    pub index: usize,
    /// Total number of shards.
    pub count: usize,
}

impl Shard {
    /// Parses the CLI form `i/N` (e.g. `--shard 2/4`); `i < N`, `N ≥ 1`.
    pub fn parse(s: &str) -> Option<Shard> {
        let (i, n) = s.split_once('/')?;
        let shard = Shard {
            index: i.parse().ok()?,
            count: n.parse().ok()?,
        };
        (shard.count >= 1 && shard.index < shard.count).then_some(shard)
    }

    /// Whether the globally `index`-th matrix cell belongs to this shard
    /// (round-robin: balances the expensive large-`n` cells, which are
    /// adjacent in the enumeration, across shards).
    pub fn owns(self, coord_index: usize) -> bool {
        coord_index % self.count == self.index
    }
}

impl std::fmt::Display for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// A fully resolved campaign configuration.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Campaign seed; every cell derives its own stream from this plus
    /// its matrix coordinates.
    pub seed: u64,
    /// The profile the defaults came from (recorded in the report).
    pub profile: Profile,
    /// Instance sizes per scheme (clamped by each entry's `max_n`).
    pub sizes: Vec<usize>,
    /// Single-bit tamper trials per yes cell.
    pub tamper_trials: usize,
    /// Hill-climbing steps per adversarial soundness cell.
    pub adversarial_iterations: usize,
    /// Largest proof space (number of candidate proofs) the exhaustive
    /// soundness check may enumerate; bigger no-cells fall back to the
    /// adversarial search.
    pub exhaustive_limit: u128,
    /// Restrict to one scheme id (CLI `--scheme`).
    pub scheme_filter: Option<String>,
    /// Restrict to one family (CLI `--family`).
    pub family_filter: Option<GraphFamily>,
    /// Run only this shard of the matrix (CLI `--shard i/N`); `None`
    /// runs everything.
    pub shard: Option<Shard>,
    /// Wall budget per cell, in milliseconds (CLI `--cell-budget-ms`);
    /// `None` — the default in every profile — leaves cells unbounded
    /// and keeps reports byte-identical to budget-unaware builds. With a
    /// budget, a cell whose checks exceed it degrades to a `timed_out`
    /// verdict instead of hanging its shard.
    pub cell_budget_ms: Option<u64>,
    /// Route the search checks through the batched evaluation layer
    /// (`lcp_core::batch`). On by default in every profile; `--no-batch`
    /// forces the scalar loops. Reports are byte-identical either way —
    /// batching may never change a verdict, a witness, or an RNG stream.
    pub batch: bool,
    /// Directory of persistent skeleton artifacts (CLI `--artifact-dir`).
    /// When set, cells prepare through a two-tier
    /// [`lcp_core::ArtifactStore`] instead of the plain in-process
    /// cache: cores already on disk are mapped in, fresh builds are
    /// persisted for later shards and processes. Reports are
    /// byte-identical with and without it — only cold-start time moves.
    pub artifact_dir: Option<std::path::PathBuf>,
}

impl CampaignConfig {
    /// The defaults for `profile` with the given seed.
    pub fn for_profile(profile: Profile, seed: u64) -> CampaignConfig {
        match profile {
            Profile::Smoke => CampaignConfig {
                seed,
                profile,
                sizes: vec![8, 16, 32],
                tamper_trials: 8,
                adversarial_iterations: 400,
                exhaustive_limit: 100_000,
                scheme_filter: None,
                family_filter: None,
                shard: None,
                cell_budget_ms: None,
                batch: true,
                artifact_dir: None,
            },
            Profile::Full => CampaignConfig {
                seed,
                profile,
                sizes: vec![8, 16, 32, 64],
                tamper_trials: 32,
                adversarial_iterations: 2_000,
                exhaustive_limit: 5_000_000,
                scheme_filter: None,
                family_filter: None,
                shard: None,
                cell_budget_ms: None,
                batch: true,
                artifact_dir: None,
            },
        }
    }
}

// ---------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------

/// Verdict of one cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellStatus {
    /// The applicable check succeeded.
    Pass,
    /// Completeness failed or a soundness violation was found.
    Fail,
    /// The `(family, polarity)` combination is inapplicable to the
    /// scheme.
    Skip,
    /// The cell panicked (both the first attempt and its same-seed
    /// retry); the panic payload is in the detail. Crashed cells keep
    /// the rest of the campaign running and exit with code 3, not 2 —
    /// a crash is an infrastructure defect, not a conformance verdict.
    Crashed,
    /// The cell exceeded its wall budget (`--cell-budget-ms`) and its
    /// checks stopped cooperatively before reaching a verdict.
    TimedOut,
}

impl CellStatus {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            CellStatus::Pass => "pass",
            CellStatus::Fail => "fail",
            CellStatus::Skip => "skip",
            CellStatus::Crashed => "crashed",
            CellStatus::TimedOut => "timed_out",
        }
    }
}

/// One `(scheme, family, size, polarity)` cell of the campaign matrix.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// Global index of this cell in the shared matrix enumeration —
    /// stable across sharding, what `campaign_merge` orders by.
    pub coord: usize,
    /// Registry id of the scheme.
    pub scheme: &'static str,
    /// Graph family the instance came from.
    pub family: GraphFamily,
    /// Requested size (pre-clamping/rounding).
    pub requested_n: usize,
    /// Actual `n(G)` of the built instance (0 for skipped cells).
    pub n: usize,
    /// The builder's intent; ground truth may differ (see `holds`).
    pub polarity: Polarity,
    /// Ground truth of the built instance.
    pub holds: bool,
    /// Verdict.
    pub status: CellStatus,
    /// Which check ran: `completeness`, `soundness-exhaustive`,
    /// `soundness-adversarial`, or `inapplicable`.
    pub check: &'static str,
    /// Honest proof size in bits per node (yes cells).
    pub proof_bits: Option<usize>,
    /// A witness node: first rejector on a completeness failure, or the
    /// tamper probe's rejecting node.
    pub witness_node: Option<usize>,
    /// Tamper probe outcome (yes cells with proof bits).
    pub tamper: Option<TamperProbe>,
    /// Deterministic human-readable detail.
    pub detail: String,
    /// Timed-out cells only: the phase the wall budget expired in and
    /// the cell's deadline-poll count at that moment. Rendered into the
    /// `detail` field of the **timed** report only (poll counts are
    /// wall-clock-dependent, like `wall_ms`), so the deterministic
    /// `--no-timing` bytes never move.
    pub timeout: Option<(&'static str, u64)>,
    /// Wall time of the cell (excluded from deterministic JSON).
    pub wall_ms: u128,
}

/// Per-scheme aggregation: all cells plus the measured-vs-claimed
/// proof-size comparison.
#[derive(Clone, Debug)]
pub struct SchemeReport {
    /// Registry id.
    pub id: &'static str,
    /// Human-readable property / problem name.
    pub title: &'static str,
    /// Paper row reference.
    pub paper_row: &'static str,
    /// Claimed bound, verbatim.
    pub claimed_bound: &'static str,
    /// Claimed bound as a growth class.
    pub claimed_growth: GrowthClass,
    /// Measured `(n, bits)` points from the accepted yes cells.
    pub points: Vec<SizePoint>,
    /// Fitted growth class, when enough spread was measured.
    pub measured_growth: Option<GrowthClass>,
    /// `Some(true)` when measured ≤ claimed, `Some(false)` on an
    /// overshoot, `None` when the spread was too small to fit.
    pub bound_ok: Option<bool>,
    /// All cells of this scheme, in matrix order.
    pub cells: Vec<CellResult>,
}

/// The whole campaign outcome.
#[derive(Clone, Debug)]
pub struct Report {
    /// Campaign seed.
    pub seed: u64,
    /// Profile name.
    pub profile: &'static str,
    /// Whether cells ran in parallel.
    pub parallel: bool,
    /// The shard this report covers (`None` = the whole matrix; merged
    /// reports are whole again).
    pub shard: Option<Shard>,
    /// Per-scheme reports, in registry order.
    pub schemes: Vec<SchemeReport>,
    /// Skeleton-cache hits across all cells (excluded from deterministic
    /// JSON: racing misses make the split nondeterministic under
    /// parallelism).
    pub cache_hits: usize,
    /// Skeleton-cache misses (fresh CSR builds) across all cells
    /// (excluded from deterministic JSON).
    pub cache_misses: usize,
    /// Total campaign wall time (excluded from deterministic JSON).
    pub wall_ms: u128,
}

impl Report {
    /// Cells in all schemes.
    pub fn cell_count(&self) -> usize {
        self.schemes.iter().map(|s| s.cells.len()).sum()
    }

    /// Cells with the given status.
    pub fn count(&self, status: CellStatus) -> usize {
        self.schemes
            .iter()
            .flat_map(|s| &s.cells)
            .filter(|c| c.status == status)
            .count()
    }

    /// Human-readable failure lines (cell failures and bound
    /// overshoots).
    pub fn failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        for s in &self.schemes {
            for c in &s.cells {
                if c.status == CellStatus::Fail {
                    out.push(format!(
                        "{} on {}/n={}/{}: {}",
                        c.scheme,
                        c.family.name(),
                        c.n,
                        c.polarity.name(),
                        c.detail
                    ));
                }
            }
            if s.bound_ok == Some(false) {
                out.push(format!(
                    "{}: measured {} exceeds claimed {} ({})",
                    s.id,
                    s.measured_growth.expect("bound_ok implies a fit"),
                    s.claimed_bound,
                    render_points(&s.points),
                ));
            }
        }
        out
    }

    /// Whether the campaign is green: no failed cells, no bound
    /// overshoots. Crashed and timed-out cells do *not* make a campaign
    /// un-green (they carry no conformance verdict) — they surface
    /// through [`Self::unresolved`] and exit code 3 instead.
    pub fn ok(&self) -> bool {
        self.failures().is_empty()
    }

    /// Cells that reached no verdict: crashed plus timed out. The CLI
    /// exits 3 when this is nonzero on an otherwise green campaign.
    pub fn unresolved(&self) -> usize {
        self.count(CellStatus::Crashed) + self.count(CellStatus::TimedOut)
    }

    /// Serializes the report as JSON.
    ///
    /// With `include_timing = false` the output is byte-identical for a
    /// given configuration regardless of wall clock, machine, or thread
    /// schedule — the form CI diffs and the determinism test pins.
    pub fn to_json(&self, include_timing: bool) -> String {
        let mut w = String::with_capacity(1 << 16);
        w.push_str("{\n");
        let _ = writeln!(w, "  \"version\": 1,");
        let _ = writeln!(w, "  \"seed\": {},", self.seed);
        let _ = writeln!(w, "  \"profile\": {},", json_str(self.profile));
        let _ = writeln!(w, "  \"parallel\": {},", self.parallel);
        if let Some(shard) = self.shard {
            let _ = writeln!(
                w,
                "  \"shard\": {{ \"index\": {}, \"count\": {} }},",
                shard.index, shard.count
            );
        }
        if include_timing {
            let _ = writeln!(w, "  \"wall_ms\": {},", self.wall_ms);
            let _ = writeln!(
                w,
                "  \"skeleton_cache\": {{ \"hits\": {}, \"misses\": {} }},",
                self.cache_hits, self.cache_misses
            );
        }
        // The crashed/timed_out keys only appear when nonzero, so
        // healthy reports stay byte-identical to pre-fault-tolerance
        // output (the determinism and resume invariants both lean on
        // this).
        let mut summary = format!(
            "\"cells\": {}, \"passed\": {}, \"failed\": {}, \"skipped\": {}",
            self.cell_count(),
            self.count(CellStatus::Pass),
            self.count(CellStatus::Fail),
            self.count(CellStatus::Skip)
        );
        let crashed = self.count(CellStatus::Crashed);
        if crashed > 0 {
            let _ = write!(summary, ", \"crashed\": {crashed}");
        }
        let timed_out = self.count(CellStatus::TimedOut);
        if timed_out > 0 {
            let _ = write!(summary, ", \"timed_out\": {timed_out}");
        }
        let _ = writeln!(w, "  \"summary\": {{ {summary} }},");
        w.push_str("  \"schemes\": [\n");
        for (i, s) in self.schemes.iter().enumerate() {
            w.push_str("    {\n");
            let _ = writeln!(w, "      \"id\": {},", json_str(s.id));
            let _ = writeln!(w, "      \"title\": {},", json_str(s.title));
            let _ = writeln!(w, "      \"paper_row\": {},", json_str(s.paper_row));
            let _ = writeln!(w, "      \"claimed_bound\": {},", json_str(s.claimed_bound));
            let _ = writeln!(
                w,
                "      \"claimed_class\": {},",
                json_str(&s.claimed_growth.to_string())
            );
            let _ = writeln!(
                w,
                "      \"measured_class\": {},",
                match s.measured_growth {
                    Some(g) => json_str(&g.to_string()),
                    None => "null".into(),
                }
            );
            let _ = writeln!(
                w,
                "      \"bound_ok\": {},",
                match s.bound_ok {
                    Some(b) => b.to_string(),
                    None => "null".into(),
                }
            );
            let _ = writeln!(
                w,
                "      \"size_points\": [{}],",
                s.points
                    .iter()
                    .map(|p| format!("{{ \"n\": {}, \"bits\": {} }}", p.n, p.bits))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            w.push_str("      \"cells\": [\n");
            for (j, c) in s.cells.iter().enumerate() {
                w.push_str("        { ");
                w.push_str(&cell_fields(c, include_timing));
                w.push_str(" }");
                w.push_str(if j + 1 < s.cells.len() { ",\n" } else { "\n" });
            }
            w.push_str("      ]\n");
            w.push_str("    }");
            w.push_str(if i + 1 < self.schemes.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        w.push_str("  ]\n}\n");
        w
    }

    /// Serializes the benchmark view of the campaign: per-cell proof
    /// sizes and wall times, in the same flat-JSON shape as
    /// `BENCH_engine.json`, so CI artifacts accumulate a perf-history
    /// series (`--bench-out`).
    ///
    /// Unlike [`Self::to_json`]'s `--no-timing` form this is *meant* to
    /// carry timings; skipped cells are omitted (they measure nothing).
    pub fn to_bench_json(&self) -> String {
        let mut w = String::with_capacity(1 << 14);
        w.push_str("{\n");
        let _ = writeln!(w, "  \"bench\": \"conformance-campaign\",");
        let _ = writeln!(w, "  \"seed\": {},", self.seed);
        let _ = writeln!(w, "  \"profile\": {},", json_str(self.profile));
        let _ = writeln!(w, "  \"parallel\": {},", self.parallel);
        let _ = writeln!(w, "  \"cells\": {},", self.cell_count());
        let _ = writeln!(w, "  \"wall_ms\": {},", self.wall_ms);
        w.push_str("  \"per_cell\": [\n");
        let measured: Vec<&CellResult> = self
            .schemes
            .iter()
            .flat_map(|s| &s.cells)
            .filter(|c| c.status != CellStatus::Skip)
            .collect();
        for (i, c) in measured.iter().enumerate() {
            let _ = write!(
                w,
                "    {{ \"scheme\": {}, \"family\": {}, \"n\": {}, \"polarity\": {}, \
                 \"check\": {}, \"proof_bits\": {}, \"wall_ms\": {} }}",
                json_str(c.scheme),
                json_str(c.family.name()),
                c.n,
                json_str(c.polarity.name()),
                json_str(c.check),
                json_opt(c.proof_bits),
                c.wall_ms,
            );
            w.push_str(if i + 1 < measured.len() { ",\n" } else { "\n" });
        }
        w.push_str("  ]\n}\n");
        w
    }
}

/// One cell's JSON fields, brace-free — the single source of truth for
/// cell serialization, shared between [`Report::to_json`] and the
/// checkpoint writer so a resumed report is byte-identical to an
/// uninterrupted one.
pub(crate) fn cell_fields(c: &CellResult, include_timing: bool) -> String {
    let mut w = String::with_capacity(256);
    let detail = match c.timeout {
        // Poll counts are wall-clock-dependent, so the enrichment lives
        // with the other timed fields; the checkpoint loader strips it
        // back out (`split_timeout_detail`) to keep resume byte-exact.
        Some((phase, polls)) if include_timing => {
            json_str(&format!("{}{}", c.detail, timeout_suffix(phase, polls)))
        }
        _ => json_str(&c.detail),
    };
    let _ = write!(
        w,
        "\"coord\": {}, \"family\": {}, \"requested_n\": {}, \"n\": {}, \"polarity\": {}, \
         \"holds\": {}, \"status\": {}, \"check\": {}, \"proof_bits\": {}, \
         \"witness_node\": {}, \"tamper\": {}, \"detail\": {}",
        c.coord,
        json_str(c.family.name()),
        c.requested_n,
        c.n,
        json_str(c.polarity.name()),
        c.holds,
        json_str(c.status.name()),
        json_str(c.check),
        json_opt(c.proof_bits),
        json_opt(c.witness_node),
        match &c.tamper {
            Some(t) => format!(
                "{{ \"trials\": {}, \"detected\": {}, \"undetected\": {}, \
                 \"witness\": {} }}",
                t.trials,
                t.detected,
                t.undetected,
                json_opt(t.witness)
            ),
            None => "null".into(),
        },
        detail,
    );
    if include_timing {
        let _ = write!(w, ", \"wall_ms\": {}", c.wall_ms);
    }
    w
}

/// The closed set of phase names a timed-out cell can report in its
/// [`CellResult::timeout`] field; keeping it closed is what lets the
/// checkpoint loader map a parsed phase back to a `&'static str`.
pub(crate) const TIMEOUT_PHASES: [&str; 4] = ["completeness", "exhaustive", "adversarial", "churn"];

/// Renders the timed-report-only detail enrichment of a timed-out cell.
pub(crate) fn timeout_suffix(phase: &str, polls: u64) -> String {
    format!(" [timed out in the {phase} phase after {polls} deadline polls]")
}

/// Inverse of [`timeout_suffix`]: splits the enrichment back off a
/// checkpointed detail string, returning the base detail plus the
/// recovered `(phase, polls)`. `None` when the detail carries no
/// (well-formed) suffix — resume then keeps the detail untouched.
pub(crate) fn split_timeout_detail(detail: &str) -> Option<(String, &'static str, u64)> {
    let idx = detail.rfind(" [timed out in the ")?;
    let rest = detail[idx..]
        .strip_prefix(" [timed out in the ")?
        .strip_suffix(" deadline polls]")?;
    let (phase_raw, polls_raw) = rest.split_once(" phase after ")?;
    let phase = TIMEOUT_PHASES.iter().find(|&&p| p == phase_raw)?;
    polls_raw
        .parse()
        .ok()
        .map(|polls| (detail[..idx].to_string(), *phase, polls))
}

fn render_points(points: &[SizePoint]) -> String {
    points
        .iter()
        .map(|p| format!("{}→{}", p.n, p.bits))
        .collect::<Vec<_>>()
        .join(" ")
}

/// The workspace-shared JSON string escaper (also what the merge's
/// parser resolves, so reports round-trip byte-exactly).
fn json_str(s: &str) -> String {
    lcp_core::json::escape(s)
}

fn json_opt(v: Option<usize>) -> String {
    match v {
        Some(x) => x.to_string(),
        None => "null".into(),
    }
}

// ---------------------------------------------------------------------
// The runner
// ---------------------------------------------------------------------

/// Adversarial size budget matched to the claimed bound at size `n`
/// (capped: huge random proofs only slow the climb down).
fn adversarial_budget(class: GrowthClass, n: usize) -> usize {
    match class {
        GrowthClass::Zero => 1,
        GrowthClass::Constant => 2,
        GrowthClass::Logarithmic => n.max(2).ilog2() as usize + 2,
        GrowthClass::Linear => n.min(24),
        GrowthClass::Quadratic => (n * n).min(48),
    }
}

/// splitmix64 over the cell coordinates: every cell gets its own RNG
/// stream regardless of execution order, filters, or registry growth.
fn cell_seed(seed: u64, scheme_id: &str, family: GraphFamily, n: usize, polarity: Polarity) -> u64 {
    // FNV-1a over the stable scheme id (never its registry position, so
    // `--scheme` replays and registry insertions don't perturb cells),
    // then splitmix rounds over the remaining coordinates.
    let id_hash = scheme_id.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
    });
    let mut z = seed ^ 0x9e37_79b9_7f4a_7c15;
    for salt in [id_hash, family as u64, n as u64, polarity as u64 + 1] {
        z = z.wrapping_add(salt.wrapping_mul(0xbf58_476d_1ce4_e5b9));
        z = (z ^ (z >> 30)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
    }
    z
}

/// One cell coordinate of the campaign matrix (static and churn modes
/// sweep the *same* matrix, so both build their coordinates here).
pub(crate) struct Coord {
    /// Global position in the full (unsharded) enumeration — the cell's
    /// stable identity across shards.
    pub(crate) index: usize,
    pub(crate) entry_idx: usize,
    pub(crate) family: GraphFamily,
    pub(crate) n: usize,
    pub(crate) polarity: Polarity,
}

/// Enumerates the campaign matrix for `entries` under `config`'s
/// filters: families × sizes × polarities per entry, with sizes clamped
/// by each entry's `max_n` and collapsed duplicates enumerated once.
///
/// Global coordinate indices are assigned **before** shard selection, so
/// every shard agrees on them; the returned list is restricted to
/// `config.shard` when one is set.
pub(crate) fn matrix_coords(entries: &[SchemeEntry], config: &CampaignConfig) -> Vec<Coord> {
    let mut coords = Vec::new();
    let mut index = 0usize;
    for (entry_idx, entry) in entries.iter().enumerate() {
        // Entries cap their sizes (max_n); after clamping, several
        // requested sizes can collapse onto the same cell — enumerate
        // each effective cell once instead of re-running duplicates.
        let mut seen = std::collections::BTreeSet::new();
        for &family in entry.families {
            if config.family_filter.is_some_and(|want| want != family) {
                continue;
            }
            for &n in &config.sizes {
                for polarity in [Polarity::Yes, Polarity::No] {
                    if seen.insert((family, n.min(entry.max_n), polarity)) {
                        if config.shard.is_none_or(|s| s.owns(index)) {
                            coords.push(Coord {
                                index,
                                entry_idx,
                                family,
                                n,
                                polarity,
                            });
                        }
                        index += 1;
                    }
                }
            }
        }
    }
    coords
}

/// The registry entries surviving `config`'s `--scheme` filter.
pub(crate) fn filtered_entries(config: &CampaignConfig) -> Vec<SchemeEntry> {
    campaign_registry()
        .into_iter()
        .filter(|e| {
            config
                .scheme_filter
                .as_deref()
                .is_none_or(|want| e.id == want)
        })
        .collect()
}

/// Maps `f` over the coordinates — across cores under the `parallel`
/// feature, sequentially otherwise; results come back in matrix order
/// either way.
#[cfg(feature = "parallel")]
pub(crate) fn map_coords<R: Send>(coords: &[Coord], f: impl Fn(&Coord) -> R + Sync) -> Vec<R> {
    if coords.len() > 1 {
        coords.par_iter().map(f).collect()
    } else {
        coords.iter().map(f).collect()
    }
}

/// Maps `f` over the coordinates — across cores under the `parallel`
/// feature, sequentially otherwise; results come back in matrix order
/// either way.
#[cfg(not(feature = "parallel"))]
pub(crate) fn map_coords<R: Send>(coords: &[Coord], f: impl Fn(&Coord) -> R + Sync) -> Vec<R> {
    coords.iter().map(f).collect()
}

fn run_one(
    entries: &[SchemeEntry],
    coord: &Coord,
    config: &CampaignConfig,
    source: &ArtifactSource,
) -> CellResult {
    let entry = &entries[coord.entry_idx];
    let started = Instant::now();
    let seed = cell_seed(config.seed, entry.id, coord.family, coord.n, coord.polarity);
    let req = CellRequest {
        family: coord.family,
        n: coord.n,
        seed,
        polarity: coord.polarity,
    };
    let mut result = CellResult {
        coord: coord.index,
        scheme: entry.id,
        family: coord.family,
        requested_n: coord.n,
        n: 0,
        polarity: coord.polarity,
        holds: false,
        status: CellStatus::Skip,
        check: "inapplicable",
        proof_bits: None,
        witness_node: None,
        tamper: None,
        detail: String::new(),
        timeout: None,
        wall_ms: 0,
    };
    let Some(cell) = entry.build(&req) else {
        result.detail = "polarity not realizable on this family".into();
        result.wall_ms = started.elapsed().as_millis();
        return result;
    };
    // Engine-backed checks on this cell prepare through the campaign's
    // shared artifact source: schemes asked about the same generated
    // graph (at the same radius) reuse one CSR build, and with
    // `--artifact-dir` that build may come straight off disk. The
    // per-cell deadline starts counting here — instance generation above
    // is not covered, but it is not where cells stall.
    let deadline = config.cell_budget_ms.map_or_else(Deadline::none, |ms| {
        Deadline::after(Duration::from_millis(ms))
    });
    let cell = cell
        .with_source(source.clone())
        .with_deadline(deadline.clone())
        .with_batch(if config.batch {
            BatchPolicy::Auto
        } else {
            BatchPolicy::Scalar
        });
    result.n = cell.n();
    result.holds = cell.holds();

    if cell.holds() {
        result.check = "completeness";
        match cell.check_completeness() {
            Ok(Some(bits)) => {
                result.status = CellStatus::Pass;
                result.proof_bits = Some(bits);
                result.detail = format!("honest proof of {bits} bits accepted everywhere");
                if deadline.expired() {
                    // The sweep finished but the budget is gone: report
                    // the overrun rather than starting the tamper probe.
                    result.status = CellStatus::TimedOut;
                    result.detail = "wall budget expired before the tamper probe".into();
                    result.timeout = Some(("completeness", deadline.polls()));
                } else if let Some(probe) = cell.tamper_probe(config.tamper_trials, seed ^ 0xa5a5) {
                    result.witness_node = probe.witness;
                    result.tamper = Some(probe);
                }
            }
            Ok(None) => {
                // check_instance only returns Ok(None) on no-instances.
                result.status = CellStatus::Fail;
                result.detail = "ground truth flipped between seal and check".into();
            }
            Err(CompletenessError::DeadlineExpired) => {
                result.status = CellStatus::TimedOut;
                result.detail = "wall budget expired during the completeness sweep".into();
                result.timeout = Some(("completeness", deadline.polls()));
            }
            Err(e) => {
                result.status = CellStatus::Fail;
                if let CompletenessError::Rejected(nodes) = &e {
                    result.witness_node = nodes.first().copied();
                }
                result.detail = format!("completeness failure: {e}");
            }
        }
    } else {
        // Soundness: exact on small cells, adversarial beyond.
        let strings = 3u128; // bit strings of length ≤ 1
        let space = strings.checked_pow(cell.n() as u32);
        if space.is_some_and(|s| s <= config.exhaustive_limit) {
            result.check = "soundness-exhaustive";
            match cell.check_soundness_exhaustive(1) {
                Ok(Soundness::Holds(tried)) => {
                    result.status = CellStatus::Pass;
                    result.detail = format!("all {tried} proofs of ≤1 bit rejected");
                }
                Ok(Soundness::Violated(p)) => {
                    result.status = CellStatus::Fail;
                    result.detail = format!(
                        "soundness violation: a {}-bit-per-node proof was fully accepted",
                        p.size()
                    );
                }
                Err(SoundnessError::DeadlineExpired { tried }) => {
                    result.status = CellStatus::TimedOut;
                    result.detail = format!("wall budget expired after {tried} candidate proofs");
                    result.timeout = Some(("exhaustive", deadline.polls()));
                }
                Err(e) => {
                    result.status = CellStatus::Skip;
                    result.detail = format!("exhaustive search refused: {e}");
                }
            }
        } else {
            result.check = "soundness-adversarial";
            let budget = adversarial_budget(entry.claimed_growth, cell.n());
            match cell.adversarial_search(budget, config.adversarial_iterations, seed ^ 0x5a5a) {
                None if deadline.expired() => {
                    result.status = CellStatus::TimedOut;
                    result.detail = "wall budget expired during the adversarial search".into();
                    result.timeout = Some(("adversarial", deadline.polls()));
                }
                None => {
                    result.status = CellStatus::Pass;
                    result.detail = format!(
                        "no accepting proof found in {} bit-flip steps at {budget} bits/node",
                        config.adversarial_iterations
                    );
                }
                Some(p) => {
                    result.status = CellStatus::Fail;
                    result.detail = format!(
                        "soundness violation: adversarial search forged a {}-bit-per-node proof",
                        p.size()
                    );
                }
            }
        }
    }
    result.wall_ms = started.elapsed().as_millis();
    result
}

// ---------------------------------------------------------------------
// Cell isolation
// ---------------------------------------------------------------------

/// Renders a `catch_unwind` payload (the argument to `panic!`).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// The `crashed` verdict for a cell whose both attempts panicked.
fn crashed_cell(entry: &SchemeEntry, coord: &Coord, first: String, second: String) -> CellResult {
    CellResult {
        coord: coord.index,
        scheme: entry.id,
        family: coord.family,
        requested_n: coord.n,
        n: 0,
        polarity: coord.polarity,
        holds: false,
        status: CellStatus::Crashed,
        check: "isolation",
        proof_bits: None,
        witness_node: None,
        tamper: None,
        detail: if first == second {
            format!("panic: {first} (deterministic: retry panicked identically)")
        } else {
            format!("panic: {first} (retry panicked: {second})")
        },
        timeout: None,
        wall_ms: 0,
    }
}

/// [`run_one`] inside a panic boundary: a panicking cell becomes a
/// `crashed` result instead of tearing down the whole shard. The cell is
/// retried once with the same seed — a clean retry is kept (annotated as
/// recovered-flaky), a second panic is classified deterministic or flaky
/// by comparing the payloads.
fn run_one_isolated(
    entries: &[SchemeEntry],
    coord: &Coord,
    config: &CampaignConfig,
    source: &ArtifactSource,
) -> CellResult {
    let attempt = || catch_unwind(AssertUnwindSafe(|| run_one(entries, coord, config, source)));
    match attempt() {
        Ok(result) => result,
        Err(payload) => {
            let first = panic_message(payload.as_ref());
            match attempt() {
                Ok(mut result) => {
                    metrics::FLAKE_RETRIES.inc();
                    let _ = write!(
                        result.detail,
                        " [recovered: first attempt panicked: {first}]"
                    );
                    result
                }
                Err(payload) => crashed_cell(
                    &entries[coord.entry_idx],
                    coord,
                    first,
                    panic_message(payload.as_ref()),
                ),
            }
        }
    }
}

/// Empty per-scheme report shells for `entries`, in registry order —
/// shared by the live runner and the shard merger.
pub(crate) fn scheme_shells(entries: &[SchemeEntry]) -> Vec<SchemeReport> {
    entries
        .iter()
        .map(|e| SchemeReport {
            id: e.id,
            title: e.title,
            paper_row: e.paper_row,
            claimed_bound: e.claimed_bound,
            claimed_growth: e.claimed_growth,
            points: Vec::new(),
            measured_growth: None,
            bound_ok: None,
            cells: Vec::new(),
        })
        .collect()
}

/// Recomputes each scheme's measured `(n, bits)` points and
/// growth-class fit from its cells — the aggregation step shared by the
/// live runner and the shard merger (so merged reports re-fit over the
/// *union* of cells, never trust per-shard fits).
pub(crate) fn fit_growth(schemes: &mut [SchemeReport]) {
    for s in schemes {
        let mut points: Vec<SizePoint> = s
            .cells
            .iter()
            .filter(|c| c.status == CellStatus::Pass)
            .filter_map(|c| c.proof_bits.map(|bits| SizePoint { n: c.n, bits }))
            .collect();
        points.sort_by_key(|p| (p.n, p.bits));
        points.dedup();
        s.points = points;
        let (lo, hi) = (
            s.points.iter().map(|p| p.n).min().unwrap_or(0),
            s.points.iter().map(|p| p.n).max().unwrap_or(0),
        );
        // Fit only with enough spread for the classes to separate.
        if s.points.len() >= 3 && lo > 0 && hi >= 3 * lo {
            let measured = classify_growth(&s.points);
            s.measured_growth = Some(measured);
            // GrowthClass orders by the asymptotic hierarchy; claims are
            // upper bounds, so measuring smaller is conformant.
            s.bound_ok = Some(measured <= s.claimed_growth);
        }
    }
}

/// Builds the campaign's shared skeleton source from `config`: a
/// two-tier mmap-backed [`ArtifactStore`] when `--artifact-dir` is set,
/// the plain in-process [`SkeletonCache`] otherwise. An unopenable
/// artifact directory degrades (with a warning) to the cache — artifact
/// persistence is a cold-start optimisation, never a correctness gate.
pub(crate) fn artifact_source_for(config: &CampaignConfig) -> ArtifactSource {
    match &config.artifact_dir {
        Some(dir) => match ArtifactStore::open(dir) {
            Ok(store) => ArtifactSource::MappedDir(Arc::new(store)),
            Err(e) => {
                eprintln!(
                    "warning: artifact dir {} unusable ({e}); falling back to in-process cache",
                    dir.display()
                );
                ArtifactSource::Cache(Arc::new(SkeletonCache::new()))
            }
        },
        None => ArtifactSource::Cache(Arc::new(SkeletonCache::new())),
    }
}

/// Runs the campaign described by `config` and assembles the [`Report`].
pub fn run_campaign(config: &CampaignConfig) -> Report {
    run_campaign_with(&filtered_entries(config), config)
}

/// Per-provenance cell counts from a [`warm_artifacts`] pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WarmSummary {
    /// Cores built in-process and persisted to the artifact directory.
    pub built: usize,
    /// Cores deduplicated against the warming pass's own cache
    /// (several schemes sharing one generated graph at one radius).
    pub cache_hits: usize,
    /// Cores already on disk from a previous pass, mapped in.
    pub loaded: usize,
    /// Matrix cells with no realizable instance (nothing to warm).
    pub skipped: usize,
}

/// Pre-populates `config.artifact_dir` with the frozen skeleton core of
/// every cell in the campaign matrix, so subsequent campaign shards and
/// serve daemons cold-start by `mmap` instead of rebuilding
/// (`--warm-artifacts` on the CLI). The shard filter is deliberately
/// ignored: one warming pass covers the whole matrix, and every shard
/// then shares the same directory.
///
/// # Panics
///
/// Panics if `config.artifact_dir` is unset or unusable — warming to
/// nowhere is a misconfiguration, not a degraded mode.
pub fn warm_artifacts(config: &CampaignConfig) -> WarmSummary {
    let dir = config
        .artifact_dir
        .as_deref()
        .expect("warm_artifacts requires artifact_dir");
    let store = ArtifactStore::open(dir)
        .unwrap_or_else(|e| panic!("artifact dir {} unusable: {e}", dir.display()));
    let source = ArtifactSource::MappedDir(Arc::new(store));
    let entries = filtered_entries(config);
    let full = CampaignConfig {
        shard: None,
        ..config.clone()
    };
    let coords = matrix_coords(&entries, &full);
    let mut summary = WarmSummary::default();
    for coord in &coords {
        let entry = &entries[coord.entry_idx];
        let seed = cell_seed(config.seed, entry.id, coord.family, coord.n, coord.polarity);
        let req = CellRequest {
            family: coord.family,
            n: coord.n,
            seed,
            polarity: coord.polarity,
        };
        let Some(cell) = entry.build(&req) else {
            summary.skipped += 1;
            continue;
        };
        match cell.with_source(source.clone()).prepare_skeletons() {
            CoreProvenance::Built => summary.built += 1,
            CoreProvenance::CacheHit => summary.cache_hits += 1,
            CoreProvenance::ArtifactLoaded => summary.loaded += 1,
        }
    }
    summary
}

/// [`run_campaign`] over an explicit entry list instead of the filtered
/// registry — the seam the fault-tolerance tests use to inject
/// deliberately panicking or slow schemes into an otherwise normal
/// matrix. Cells run inside the panic boundary either way.
pub fn run_campaign_with(entries: &[SchemeEntry], config: &CampaignConfig) -> Report {
    run_campaign_inner(entries, config, None, &std::collections::HashMap::new())
}

/// The full runner: `resume` short-circuits cells already completed by a
/// checkpointed predecessor run (spliced back in matrix order, so the
/// report is byte-identical to an uninterrupted run), and `writer`
/// appends every freshly computed cell to the checkpoint file.
pub(crate) fn run_campaign_inner(
    entries: &[SchemeEntry],
    config: &CampaignConfig,
    writer: Option<&checkpoint::CheckpointWriter>,
    resume: &std::collections::HashMap<usize, CellResult>,
) -> Report {
    let started = Instant::now();
    let _campaign_span = lcp_obs::start_span(metrics::campaign_span());
    let coords = matrix_coords(entries, config);
    let source = artifact_source_for(config);
    let results = map_coords(&coords, |c| {
        if let Some(done) = resume.get(&c.index) {
            metrics::CELLS_RESUMED.inc();
            return done.clone();
        }
        let cell = {
            let _cell_span = lcp_obs::start_span(metrics::cell_span());
            run_one_isolated(entries, c, config, &source)
        };
        metrics::record_cell(cell.status, cell.wall_ms);
        if let Some(w) = writer {
            w.append(&checkpoint::static_cell_line(&cell));
        }
        cell
    });

    let mut schemes = scheme_shells(entries);
    for (coord, cell) in coords.iter().zip(results) {
        schemes[coord.entry_idx].cells.push(cell);
    }
    // Growth fitting is a whole-matrix judgement: a shard sees only a
    // slice of each scheme's (n, bits) points, so fitting it would
    // produce spurious bound verdicts. Sharded runs leave the fits to
    // `campaign_merge`, which re-fits over the union of cells.
    if config.shard.is_none() {
        fit_growth(&mut schemes);
    }

    Report {
        seed: config.seed,
        profile: config.profile.name(),
        parallel: cfg!(feature = "parallel"),
        shard: config.shard,
        schemes,
        cache_hits: source.cache().map_or(0, SkeletonCache::hits),
        cache_misses: source.cache().map_or(0, SkeletonCache::misses),
        wall_ms: started.elapsed().as_millis(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> CampaignConfig {
        CampaignConfig {
            sizes: vec![8],
            tamper_trials: 4,
            adversarial_iterations: 100,
            ..CampaignConfig::for_profile(Profile::Smoke, 7)
        }
    }

    #[test]
    fn single_scheme_campaign_is_green() {
        let config = CampaignConfig {
            scheme_filter: Some("bipartite".into()),
            ..tiny_config()
        };
        let report = run_campaign(&config);
        assert!(report.ok(), "failures: {:?}", report.failures());
        assert_eq!(report.schemes.len(), 1);
        assert!(report.count(CellStatus::Pass) >= 3);
    }

    #[test]
    fn json_escapes_and_parses_shape() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        let config = CampaignConfig {
            scheme_filter: Some("eulerian".into()),
            ..tiny_config()
        };
        let report = run_campaign(&config);
        let json = report.to_json(true);
        assert!(json.contains("\"wall_ms\""));
        let stable = report.to_json(false);
        assert!(!stable.contains("wall_ms"));
        assert!(stable.contains("\"id\": \"eulerian\""));
    }

    #[test]
    fn registry_includes_the_logic_scheme() {
        let ids: Vec<&str> = campaign_registry().iter().map(|e| e.id).collect();
        assert!(ids.contains(&"sigma11-independent-dominating"));
        assert_eq!(
            ids.len(),
            lcp_schemes::registry::all().len() + 1,
            "campaign registry = schemes registry + sigma11"
        );
    }
}
