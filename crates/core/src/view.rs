//! Local views: the triple `(G[v,r], P[v,r], v)` a verifier sees (§2.1).
//!
//! A [`View`] is *extracted* — a standalone copy of the radius-`r` ball
//! around the centre, with its own dense indices. A verifier receives only
//! the view, so locality is enforced by construction rather than by
//! convention: there is no way to read labels, proofs, or edges beyond the
//! horizon.
//!
//! Internally a view is split into two parts:
//!
//! * a skeleton — everything that depends only on `(instance, radius)`:
//!   identifiers, CSR adjacency, distances, node labels, and sorted edge
//!   labels. Skeletons are shared behind an [`Arc`], so cloning a view or
//!   re-binding it to a new proof never re-runs a BFS or re-copies the
//!   topology;
//! * the **proof binding** — where the per-node bits come from, the only
//!   part that changes between candidate proofs. A binding either *owns*
//!   a word-packed [`ProofArena`] (the naive [`View::extract`] path and
//!   the simulator's [`View::from_parts`]) or *borrows* slices of the
//!   proof's arena (the engine path): binding a cached skeleton to a new
//!   candidate proof then costs nothing at all — the view reads the
//!   arena's current bits through [`View::proof`].
//!
//! [`View::extract`] builds a fresh skeleton each call (the naive path);
//! [`crate::engine::PreparedInstance`] precomputes every node's skeleton
//! once and stamps out zero-copy arena bindings per candidate proof.

use crate::arena::ProofArena;
use crate::bits::{BitString, ProofRef};
use crate::instance::{EdgeMap, Instance};
use crate::proof::Proof;
use lcp_graph::{norm_edge, Graph, NodeId};
use std::sync::Arc;

/// The proof-independent part of a view: topology, identifiers, labels.
///
/// Adjacency is stored in CSR form (one flat neighbour array plus
/// offsets) and edge labels as a key-sorted slice, so a skeleton is a
/// handful of contiguous allocations regardless of ball size.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Skeleton<N, E> {
    pub(crate) center: usize,
    pub(crate) radius: usize,
    pub(crate) ids: Vec<NodeId>,
    /// CSR offsets into `adj`; node `u`'s neighbours are
    /// `adj[adj_off[u] as usize .. adj_off[u + 1] as usize]`.
    pub(crate) adj_off: Vec<u32>,
    pub(crate) adj: Vec<usize>,
    pub(crate) dist: Vec<u32>,
    pub(crate) node_data: Vec<N>,
    /// Normalized-key-sorted edge labels (binary-searched on access).
    pub(crate) edge_labels: Vec<((usize, usize), E)>,
}

impl<N, E> Skeleton<N, E> {
    pub(crate) fn n(&self) -> usize {
        self.ids.len()
    }

    /// This skeleton as a borrow-only [`SkelView`].
    #[inline]
    pub(crate) fn as_view(&self) -> SkelView<'_, N, E> {
        SkelView {
            center: self.center,
            radius: self.radius,
            ids: &self.ids,
            adj_off: &self.adj_off,
            adj: &self.adj,
            dist: &self.dist,
            node_data: &self.node_data,
            edge_labels: &self.edge_labels,
        }
    }
}

/// A borrowed, flat skeleton: the same data as [`Skeleton`], but every
/// section is a slice, so the backing storage can be an owned
/// `Skeleton`'s vectors *or* contiguous pools inside a
/// [`crate::engine::FrozenCore`] (possibly an `mmap`ed artifact file).
/// Everything downstream of skeleton construction — [`View`],
/// [`crate::batch::BatchView`], the verifier loops — consumes this type
/// and is thereby agnostic to where the skeleton came from.
#[derive(Debug, PartialEq, Eq)]
pub(crate) struct SkelView<'c, N, E> {
    pub(crate) center: usize,
    pub(crate) radius: usize,
    pub(crate) ids: &'c [NodeId],
    /// CSR offsets into `adj`; node `u`'s neighbours are
    /// `adj[adj_off[u] as usize .. adj_off[u + 1] as usize]`.
    pub(crate) adj_off: &'c [u32],
    pub(crate) adj: &'c [usize],
    pub(crate) dist: &'c [u32],
    pub(crate) node_data: &'c [N],
    /// Normalized-key-sorted edge labels (binary-searched on access).
    pub(crate) edge_labels: &'c [((usize, usize), E)],
}

// Manual Copy/Clone: the derives would demand `N: Copy`/`E: Copy`, but
// the fields are slices, copyable for any label type.
impl<N, E> Clone for SkelView<'_, N, E> {
    #[inline]
    fn clone(&self) -> Self {
        *self
    }
}
impl<N, E> Copy for SkelView<'_, N, E> {}

impl<'c, N, E> SkelView<'c, N, E> {
    #[inline]
    pub(crate) fn n(&self) -> usize {
        self.ids.len()
    }

    #[inline]
    pub(crate) fn neighbors(&self, u: usize) -> &'c [usize] {
        &self.adj[self.adj_off[u] as usize..self.adj_off[u + 1] as usize]
    }
}

/// Where a view's proof bits come from.
///
/// Owned bindings copy the ball's bits into a private word-packed arena;
/// borrowed bindings read straight out of the bound proof's arena
/// through the ball-membership table — the engine's zero-copy path.
#[derive(Clone, Debug)]
enum Binding<'p> {
    /// A private arena, one slot per view-local node.
    Owned(ProofArena),
    /// Borrowed slices of a proof arena; view-local node `u` reads
    /// global slot `members[u]`.
    Arena {
        arena: &'p ProofArena,
        members: &'p [u32],
    },
}

/// How a view holds its skeleton.
///
/// The naive constructors share an [`Arc`]; the engine's per-candidate
/// bindings borrow the prepared instance's cached skeleton instead, so
/// stamping out a view costs no refcount traffic at all — the verifier
/// loops construct millions of views per second.
#[derive(Clone, Debug)]
enum SkelRef<'p, N, E> {
    /// Shared ownership (extraction, simulator, restriction).
    Shared(Arc<Skeleton<N, E>>),
    /// Borrowed from a [`crate::engine::FrozenCore`] (in-process or
    /// mapped from an artifact file) — the engine's zero-copy path.
    Flat(SkelView<'p, N, E>),
}

/// The radius-`r` view of one node: induced subgraph, identifiers, labels,
/// proof restriction, and the centre.
///
/// The lifetime `'p` is the proof binding's: views produced by
/// [`crate::engine::PreparedInstance::bind`] borrow the proof's arena,
/// while [`View::extract`] / [`View::from_parts`] own their bits and are
/// `'static` in `'p`.
#[derive(Clone, Debug)]
pub struct View<'p, N = (), E = ()> {
    skel: SkelRef<'p, N, E>,
    binding: Binding<'p>,
}

impl<N: PartialEq, E: PartialEq> PartialEq for View<'_, N, E> {
    /// Observational equality: same skeleton content, same proof bits —
    /// regardless of whether either side owns or borrows its binding.
    fn eq(&self, other: &Self) -> bool {
        self.skeleton() == other.skeleton() && self.nodes().all(|u| self.proof(u) == other.proof(u))
    }
}

impl<N: Eq, E: Eq> Eq for View<'_, N, E> {}

impl<'p, N: Clone, E: Clone> View<'p, N, E> {
    /// Extracts the view `(G[v,r], P[v,r], v)` from an instance.
    ///
    /// This is the naive path: it runs a BFS and rebuilds the skeleton on
    /// every call. When many proofs are checked against one instance, use
    /// [`crate::engine::PreparedInstance`], which builds each node's
    /// skeleton once and binds candidate proofs for free.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or `proof.n()` mismatches the graph.
    pub fn extract(inst: &Instance<N, E>, proof: &Proof, v: usize, radius: usize) -> Self {
        assert_eq!(proof.n(), inst.n(), "proof must label every node");
        let mut scratch = BallScratch::new(inst.graph().n());
        let (skel, members) = build_skeleton(inst, v, radius, &mut scratch);
        let proofs = ProofArena::from_refs(members.iter().map(|&u| proof.get(u as usize)));
        View {
            skel: SkelRef::Shared(Arc::new(skel)),
            binding: Binding::Owned(proofs),
        }
    }
}

impl<N: PartialEq, E: PartialEq> PartialEq<Skeleton<N, E>> for SkelView<'_, N, E> {
    fn eq(&self, other: &Skeleton<N, E>) -> bool {
        *self == other.as_view()
    }
}

/// Reusable scratch buffers for skeleton construction, so preparing every
/// ball of an instance performs no per-ball map allocations.
pub(crate) struct BallScratch {
    /// Visit stamp per global node; `stamp[u] == cur` marks membership.
    stamp: Vec<u64>,
    cur: u64,
    /// BFS distance per global node (valid where stamped).
    dist: Vec<u32>,
    /// Ball-local index per global node (valid where stamped).
    local: Vec<u32>,
    /// BFS queue (reused).
    queue: Vec<usize>,
}

impl BallScratch {
    pub(crate) fn new(n: usize) -> Self {
        BallScratch {
            stamp: vec![0; n],
            cur: 0,
            dist: vec![0; n],
            local: vec![0; n],
            queue: Vec::with_capacity(n),
        }
    }

    /// The sorted union of the radius-`r` balls around `sources` — one
    /// multi-source BFS costing `O(Σ|ball|)`, not `O(n)` per call.
    ///
    /// This is the *scope* of an edge mutation: every node whose view can
    /// change when an edge `{u, v}` appears or disappears lies in
    /// `ball(u, r) ∪ ball(v, r)` of the graph that contains the edge.
    pub(crate) fn ball_union(
        &mut self,
        g: &lcp_graph::Graph,
        sources: &[usize],
        r: usize,
    ) -> Vec<usize> {
        self.cur += 1;
        let cur = self.cur;
        self.queue.clear();
        for &s in sources {
            assert!(s < g.n(), "ball source {s} out of range");
            if self.stamp[s] != cur {
                self.stamp[s] = cur;
                self.dist[s] = 0;
                self.queue.push(s);
            }
        }
        let mut head = 0;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            let du = self.dist[u];
            if du as usize == r {
                continue;
            }
            for &w in g.neighbors(u) {
                if self.stamp[w] != cur {
                    self.stamp[w] = cur;
                    self.dist[w] = du + 1;
                    self.queue.push(w);
                }
            }
        }
        let mut members = self.queue.clone();
        members.sort_unstable();
        members
    }
}

/// Builds the skeleton of `(G[v,r], v)` plus the sorted global indices of
/// the ball members (the information needed to bind a proof later).
pub(crate) fn build_skeleton<N: Clone, E: Clone>(
    inst: &Instance<N, E>,
    v: usize,
    radius: usize,
    scratch: &mut BallScratch,
) -> (Skeleton<N, E>, Vec<u32>) {
    let g = inst.graph();
    assert!(v < g.n(), "view centre {v} out of range");
    scratch.cur += 1;
    let cur = scratch.cur;
    scratch.queue.clear();
    scratch.queue.push(v);
    scratch.stamp[v] = cur;
    scratch.dist[v] = 0;
    let mut head = 0;
    while head < scratch.queue.len() {
        let u = scratch.queue[head];
        head += 1;
        let du = scratch.dist[u];
        if du as usize == radius {
            continue;
        }
        for &w in g.neighbors(u) {
            if scratch.stamp[w] != cur {
                scratch.stamp[w] = cur;
                scratch.dist[w] = du + 1;
                scratch.queue.push(w);
            }
        }
    }
    // Sorted members give the view its dense index order (stable with the
    // historical `traversal::ball` contract).
    let mut members: Vec<u32> = scratch.queue.iter().map(|&u| u as u32).collect();
    members.sort_unstable();
    for (new, &old) in members.iter().enumerate() {
        scratch.local[old as usize] = new as u32;
    }
    // CSR adjacency over the induced ball; graph adjacency is sorted and
    // the member order is monotone in global index, so each local list
    // comes out sorted without an explicit sort.
    let mut adj_off = Vec::with_capacity(members.len() + 1);
    let mut adj = Vec::new();
    let has_edge_labels = !inst.edge_labels().is_empty();
    let mut edge_labels = Vec::new();
    adj_off.push(0u32);
    for (nu, &ou) in members.iter().enumerate() {
        for &ow in g.neighbors(ou as usize) {
            if scratch.stamp[ow] != cur {
                continue; // beyond the horizon
            }
            let nw = scratch.local[ow] as usize;
            adj.push(nw);
            if has_edge_labels && nu < nw {
                if let Some(label) = inst.edge_label(ou as usize, ow) {
                    edge_labels.push(((nu, nw), label.clone()));
                }
            }
        }
        adj_off.push(adj.len() as u32);
    }
    let skel = Skeleton {
        center: scratch.local[v] as usize,
        radius,
        ids: members.iter().map(|&u| g.id(u as usize)).collect(),
        adj_off,
        adj,
        dist: members.iter().map(|&u| scratch.dist[u as usize]).collect(),
        node_data: members
            .iter()
            .map(|&u| inst.node_label(u as usize).clone())
            .collect(),
        edge_labels,
    };
    (skel, members)
}

impl<'p, N, E> View<'p, N, E> {
    /// Assembles a view from a borrowed flat skeleton and a borrowed
    /// arena binding — the engine's zero-copy constructor.
    pub(crate) fn bind_arena(
        skel: SkelView<'p, N, E>,
        arena: &'p ProofArena,
        members: &'p [u32],
    ) -> Self {
        debug_assert_eq!(skel.n(), members.len(), "one arena slot per view node");
        View {
            skel: SkelRef::Flat(skel),
            binding: Binding::Arena { arena, members },
        }
    }

    /// The underlying skeleton as a flat view, whichever way it is held.
    #[inline]
    fn skeleton(&self) -> SkelView<'_, N, E> {
        match &self.skel {
            SkelRef::Shared(arc) => arc.as_view(),
            SkelRef::Flat(sv) => *sv,
        }
    }

    /// Assembles a view from raw parts — the constructor used by the
    /// message-passing simulator in `lcp-sim`, which must build the view
    /// from knowledge a node gathered over `radius` communication rounds.
    ///
    /// All vectors are indexed by view-node index; `adj` lists must be
    /// sorted and symmetric, and `edge_data` keys normalized. Library
    /// users normally want [`View::extract`] instead.
    ///
    /// # Panics
    ///
    /// Panics when lengths disagree, the centre is out of range, adjacency
    /// is unsorted/asymmetric, or a distance exceeds `radius`.
    pub fn from_parts(
        center: usize,
        radius: usize,
        ids: Vec<NodeId>,
        adj: Vec<Vec<usize>>,
        dist: Vec<usize>,
        node_data: Vec<N>,
        edge_data: EdgeMap<E>,
        proofs: Vec<BitString>,
    ) -> Self {
        let n = ids.len();
        assert!(center < n, "centre out of range");
        assert_eq!(adj.len(), n, "adjacency length mismatch");
        assert_eq!(dist.len(), n, "distance length mismatch");
        assert_eq!(node_data.len(), n, "node data length mismatch");
        assert_eq!(proofs.len(), n, "proof length mismatch");
        assert_eq!(dist[center], 0, "centre must be at distance 0");
        for (u, list) in adj.iter().enumerate() {
            assert!(list.windows(2).all(|w| w[0] < w[1]), "adjacency unsorted");
            for &w in list {
                assert!(w < n, "adjacency index out of range");
                assert!(adj[w].binary_search(&u).is_ok(), "adjacency asymmetric");
            }
        }
        for d in &dist {
            assert!(*d <= radius, "distance beyond radius");
        }
        for &(u, w) in edge_data.keys() {
            assert!(
                u <= w && adj[u].binary_search(&w).is_ok(),
                "edge label off-edge"
            );
        }
        let mut adj_off = Vec::with_capacity(n + 1);
        adj_off.push(0u32);
        let mut flat = Vec::with_capacity(adj.iter().map(Vec::len).sum());
        for list in &adj {
            flat.extend_from_slice(list);
            adj_off.push(flat.len() as u32);
        }
        View {
            skel: SkelRef::Shared(Arc::new(Skeleton {
                center,
                radius,
                ids,
                adj_off,
                adj: flat,
                dist: dist.into_iter().map(|d| d as u32).collect(),
                node_data,
                edge_labels: edge_data.into_iter().collect(),
            })),
            binding: Binding::Owned(ProofArena::from_strings(&proofs)),
        }
    }

    /// The centre's index *within the view*.
    pub fn center(&self) -> usize {
        self.skeleton().center
    }

    /// The extraction radius `r`.
    pub fn radius(&self) -> usize {
        self.skeleton().radius
    }

    /// Number of nodes in the view.
    pub fn n(&self) -> usize {
        self.skeleton().n()
    }

    /// Identifier of view node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn id(&self, u: usize) -> NodeId {
        self.skeleton().ids[u]
    }

    /// All identifiers in view-index order.
    pub fn ids(&self) -> &[NodeId] {
        self.skeleton().ids
    }

    /// View index of the node with identifier `id`, if visible.
    pub fn index_of(&self, id: NodeId) -> Option<usize> {
        self.skeleton().ids.iter().position(|&x| x == id)
    }

    /// Distance from the centre (in the original graph, ≤ radius).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn dist(&self, u: usize) -> usize {
        self.skeleton().dist[u] as usize
    }

    /// Sorted neighbours of `u` within the view.
    ///
    /// Note: for `u` at distance exactly `r` this can be a strict subset
    /// of its true neighbourhood — exactly as in the paper's `G[v,r]`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn neighbors(&self, u: usize) -> &[usize] {
        self.skeleton().neighbors(u)
    }

    /// Degree of `u` within the view.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn degree(&self, u: usize) -> usize {
        self.neighbors(u).len()
    }

    /// Whether `{u, w}` is an edge of the view.
    pub fn has_edge(&self, u: usize, w: usize) -> bool {
        u < self.n() && w < self.n() && self.neighbors(u).binary_search(&w).is_ok()
    }

    /// Iterates over view node indices.
    pub fn nodes(&self) -> std::ops::Range<usize> {
        0..self.n()
    }

    /// All view edges as normalized pairs.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for u in self.nodes() {
            for &w in self.neighbors(u) {
                if u < w {
                    out.push((u, w));
                }
            }
        }
        out
    }

    /// The node label of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn node_label(&self, u: usize) -> &N {
        &self.skeleton().node_data[u]
    }

    /// The edge label of `{u, w}` within the view, if present.
    pub fn edge_label(&self, u: usize, w: usize) -> Option<&E> {
        let key = norm_edge(u, w);
        self.skeleton()
            .edge_labels
            .binary_search_by(|(k, _)| k.cmp(&key))
            .ok()
            .map(|i| &self.skeleton().edge_labels[i].1)
    }

    /// The proof string of `u` (the restriction `P[v,r]`), as a borrowed
    /// word-packed slice.
    ///
    /// Borrowed bindings read the bound arena's *current* bits — no copy
    /// ever happened, so this is always fresh.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline(always)]
    pub fn proof(&self, u: usize) -> ProofRef<'_> {
        match &self.binding {
            Binding::Owned(arena) => arena.get(u),
            Binding::Arena { arena, members } => arena.get(members[u] as usize),
        }
    }

    /// Restricts the view to a smaller radius `r' ≤ r`, producing the
    /// view `(G[v,r'], P[v,r'], v)` a shorter-horizon verifier would see.
    ///
    /// Used by scheme *combinators* — e.g. the §7.3 complement adapter
    /// simulates an inner radius-`r'` verifier at the root of its
    /// spanning tree.
    ///
    /// # Panics
    ///
    /// Panics if `new_radius` exceeds the current radius.
    pub fn restrict(&self, new_radius: usize) -> Self
    where
        N: Clone,
        E: Clone,
    {
        assert!(
            new_radius <= self.radius(),
            "cannot widen a view ({new_radius} > {})",
            self.radius()
        );
        let keep: Vec<usize> = self
            .nodes()
            .filter(|&u| self.dist(u) <= new_radius)
            .collect();
        let mut old_to_new = vec![usize::MAX; self.n()];
        for (new, &old) in keep.iter().enumerate() {
            old_to_new[old] = new;
        }
        let mut adj_off = vec![0u32];
        let mut adj = Vec::new();
        let mut edge_labels = Vec::new();
        for (nu, &ou) in keep.iter().enumerate() {
            for &ow in self.neighbors(ou) {
                let nw = old_to_new[ow];
                if nw == usize::MAX {
                    continue;
                }
                adj.push(nw);
                if nu < nw {
                    if let Some(l) = self.edge_label(ou, ow) {
                        edge_labels.push(((nu, nw), l.clone()));
                    }
                }
            }
            let start = adj_off[nu] as usize;
            adj[start..].sort_unstable();
            adj_off.push(adj.len() as u32);
        }
        View {
            skel: SkelRef::Shared(Arc::new(Skeleton {
                center: old_to_new[self.center()],
                radius: new_radius,
                ids: keep.iter().map(|&u| self.skeleton().ids[u]).collect(),
                adj_off,
                adj,
                dist: keep.iter().map(|&u| self.skeleton().dist[u]).collect(),
                node_data: keep
                    .iter()
                    .map(|&u| self.skeleton().node_data[u].clone())
                    .collect(),
                edge_labels,
            })),
            binding: Binding::Owned(ProofArena::from_refs(keep.iter().map(|&u| self.proof(u)))),
        }
    }

    /// A copy of the view with every proof string blanked to `ε` — what an
    /// inner `LCP(0)` verifier must be shown (§7.3 simulates the inner
    /// verifier "with the empty proof").
    ///
    /// Cheap: the topology skeleton is shared, only the proof binding is
    /// replaced.
    pub fn with_proofs_cleared(&self) -> View<'_, N, E> {
        View {
            skel: SkelRef::Flat(self.skeleton()),
            binding: Binding::Owned(ProofArena::empty(self.n())),
        }
    }

    /// Materializes the view's topology as a standalone [`Graph`]
    /// (same identifiers), so graph algorithms can run on it.
    pub fn to_graph(&self) -> Graph {
        let mut g =
            Graph::from_ids(self.skeleton().ids.iter().copied()).expect("view ids are unique");
        for (u, w) in self.edges() {
            g.add_edge(u, w).expect("view is simple");
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcp_graph::generators;

    fn proof_of_ids(g: &Graph) -> Proof {
        Proof::from_fn(g.n(), |v| {
            let mut w = crate::bits::BitWriter::new();
            w.write_gamma(g.id(v).0);
            w.finish()
        })
    }

    #[test]
    fn radius_zero_view_is_lonely() {
        let g = generators::cycle(5);
        let inst = Instance::unlabeled(g);
        let v = View::extract(&inst, &Proof::empty(5), 2, 0);
        assert_eq!(v.n(), 1);
        assert_eq!(v.center(), 0);
        assert_eq!(v.degree(0), 0);
        assert_eq!(v.id(0), NodeId(3));
    }

    #[test]
    fn radius_one_view_of_cycle() {
        let g = generators::cycle(6);
        let inst = Instance::unlabeled(g);
        let v = View::extract(&inst, &Proof::empty(6), 0, 1);
        assert_eq!(v.n(), 3);
        assert_eq!(v.dist(v.center()), 0);
        // Centre sees both neighbours, which are not adjacent to each other.
        assert_eq!(v.degree(v.center()), 2);
        let others: Vec<usize> = v.nodes().filter(|&u| u != v.center()).collect();
        assert!(!v.has_edge(others[0], others[1]));
        // Boundary nodes have visible degree 1 (their far edges are hidden).
        assert_eq!(v.degree(others[0]), 1);
    }

    #[test]
    fn view_on_triangle_sees_closing_edge() {
        let g = generators::cycle(3);
        let inst = Instance::unlabeled(g);
        let v = View::extract(&inst, &Proof::empty(3), 0, 1);
        assert_eq!(v.n(), 3);
        assert_eq!(v.edges().len(), 3, "induced view includes the far edge");
    }

    #[test]
    fn proofs_and_ids_restricted_consistently() {
        let g = generators::path(7);
        let p = proof_of_ids(&g);
        let inst = Instance::unlabeled(g);
        let v = View::extract(&inst, &p, 3, 2);
        assert_eq!(v.n(), 5);
        for u in v.nodes() {
            let mut r = crate::bits::BitReader::new(v.proof(u));
            assert_eq!(r.read_gamma().unwrap(), v.id(u).0, "proof follows node");
        }
    }

    #[test]
    fn labels_travel_with_the_view() {
        let g = generators::path(4);
        let inst: Instance<u8> = Instance::with_node_data(g, vec![0u8, 1, 2, 3]);
        let v = View::extract(&inst, &Proof::empty(4), 1, 1);
        let idx2 = v.index_of(NodeId(3)).unwrap(); // node index 2 has id 3
        assert_eq!(*v.node_label(idx2), 2);
    }

    #[test]
    fn edge_labels_restricted_to_view() {
        let g = generators::path(5); // 0-1-2-3-4
        let inst = Instance::unlabeled(g).with_edge_set([(0, 1), (3, 4)]);
        let v = View::extract(&inst, &Proof::empty(5), 1, 1);
        // View holds nodes 0,1,2; edge (0,1) labelled, (3,4) invisible.
        let i0 = v.index_of(NodeId(1)).unwrap();
        let i1 = v.index_of(NodeId(2)).unwrap();
        assert!(v.edge_label(i0, i1).is_some());
        assert_eq!(v.n(), 3);
    }

    #[test]
    fn distances_match_original_graph() {
        let g = generators::grid(3, 3);
        let inst = Instance::unlabeled(g);
        let v = View::extract(&inst, &Proof::empty(9), 4, 2);
        assert_eq!(v.n(), 9);
        for u in v.nodes() {
            assert!(v.dist(u) <= 2);
        }
        assert_eq!(v.dist(v.center()), 0);
    }

    #[test]
    fn to_graph_matches_view_topology() {
        let g = generators::complete(4);
        let inst = Instance::unlabeled(g);
        let v = View::extract(&inst, &Proof::empty(4), 0, 1);
        let h = v.to_graph();
        assert_eq!(h.n(), 4);
        assert_eq!(h.m(), 6);
    }

    #[test]
    fn extract_matches_bfs_ball_and_distances() {
        let g = generators::grid(4, 4);
        let inst = Instance::unlabeled(g);
        for v in 0..inst.n() {
            for r in 0..4 {
                let view = View::extract(&inst, &Proof::empty(16), v, r);
                let ball = lcp_graph::traversal::ball(inst.graph(), v, r);
                let members: Vec<usize> = view
                    .ids()
                    .iter()
                    .map(|&id| inst.graph().index_of(id).unwrap())
                    .collect();
                assert_eq!(members, ball, "ball mismatch at v={v} r={r}");
                let dists = lcp_graph::traversal::bfs_distances(inst.graph(), v);
                for (local, &global) in members.iter().enumerate() {
                    assert_eq!(Some(view.dist(local)), dists[global]);
                }
            }
        }
    }

    #[test]
    fn cleared_proofs_share_the_skeleton() {
        let g = generators::cycle(6);
        let inst = Instance::unlabeled(g);
        let p = proof_of_ids(inst.graph());
        let v = View::extract(&inst, &p, 0, 2);
        let cleared = v.with_proofs_cleared();
        assert!(
            std::ptr::eq(v.skeleton().ids.as_ptr(), cleared.skeleton().ids.as_ptr()),
            "skeleton storage is shared"
        );
        assert!(cleared.nodes().all(|u| cleared.proof(u).is_empty()));
        assert!(v.nodes().any(|u| !v.proof(u).is_empty()), "original intact");
    }
}
