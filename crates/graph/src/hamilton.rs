//! Hamiltonian-cycle search (exponential backtracking, prover-side only).
//!
//! The Table 1(b) scheme verifies a *given* Hamiltonian cycle; this
//! solver lets the property-flavoured scheme and the instance generators
//! find one. Nondeterminism is free for provers, so exponential time is
//! acceptable here — the verifier stays local and cheap.

use crate::Graph;

/// Finds a Hamiltonian cycle as a node sequence (endpoint not repeated),
/// or `None` if none exists.
///
/// Backtracking with degree-based pruning; intended for the small and
/// medium instances of the test and bench sweeps.
pub fn hamiltonian_cycle(g: &Graph) -> Option<Vec<usize>> {
    let n = g.n();
    if n < 3 {
        return None;
    }
    if g.nodes().any(|u| g.degree(u) < 2) {
        return None;
    }
    let mut path = vec![0usize];
    let mut used = vec![false; n];
    used[0] = true;
    fn rec(g: &Graph, path: &mut Vec<usize>, used: &mut [bool]) -> bool {
        if path.len() == g.n() {
            return g.has_edge(*path.last().expect("nonempty"), path[0]);
        }
        let u = *path.last().expect("nonempty");
        // Prune: any unused node with < 2 unused-or-endpoint neighbours
        // can never be covered.
        for v in g.nodes() {
            if used[v] {
                continue;
            }
            let free = g
                .neighbors(v)
                .iter()
                .filter(|&&w| !used[w] || w == path[0] || w == u)
                .count();
            if free < 2 {
                return false;
            }
        }
        for &v in g.neighbors(u) {
            if used[v] {
                continue;
            }
            used[v] = true;
            path.push(v);
            if rec(g, path, used) {
                return true;
            }
            path.pop();
            used[v] = false;
        }
        false
    }
    rec(g, &mut path, &mut used).then_some(path)
}

/// Whether `g` has a Hamiltonian cycle.
pub fn is_hamiltonian(g: &Graph) -> bool {
    hamiltonian_cycle(g).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn assert_valid_ham(g: &Graph, cycle: &[usize]) {
        assert_eq!(cycle.len(), g.n());
        let mut seen = vec![false; g.n()];
        for &v in cycle {
            assert!(!seen[v], "repeated node");
            seen[v] = true;
        }
        for i in 0..cycle.len() {
            assert!(g.has_edge(cycle[i], cycle[(i + 1) % cycle.len()]));
        }
    }

    #[test]
    fn cycles_and_cliques_are_hamiltonian() {
        for n in 3..9 {
            let c = generators::cycle(n);
            assert_valid_ham(&c, &hamiltonian_cycle(&c).unwrap());
            let k = generators::complete(n);
            assert_valid_ham(&k, &hamiltonian_cycle(&k).unwrap());
        }
    }

    #[test]
    fn trees_and_stars_are_not() {
        assert!(!is_hamiltonian(&generators::path(5)));
        assert!(!is_hamiltonian(&generators::star(4)));
        assert!(!is_hamiltonian(&generators::complete_binary_tree(3)));
    }

    #[test]
    fn petersen_graph_is_not_hamiltonian() {
        let mut g = Graph::with_contiguous_ids(10);
        for i in 0..5 {
            g.add_edge(i, (i + 1) % 5).unwrap();
            g.add_edge(5 + i, 5 + (i + 2) % 5).unwrap();
            g.add_edge(i, 5 + i).unwrap();
        }
        assert!(!is_hamiltonian(&g));
    }

    #[test]
    fn grid_hamiltonicity_depends_on_parity() {
        // Grids with an even number of cells are Hamiltonian; 3×3 is not.
        assert!(is_hamiltonian(&generators::grid(3, 4)));
        assert!(!is_hamiltonian(&generators::grid(3, 3)));
    }

    #[test]
    fn k33_is_hamiltonian() {
        let g = generators::complete_bipartite(3, 3);
        assert_valid_ham(&g, &hamiltonian_cycle(&g).unwrap());
    }
}
