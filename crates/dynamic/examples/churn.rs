//! Churn a bipartiteness cell and watch incremental re-verification
//! track the from-scratch verdict.
//!
//! ```text
//! cargo run -p lcp-dynamic --example churn
//! ```

use lcp_core::{BitString, Instance, Proof, Scheme, View};
use lcp_dynamic::churn::{run_churn, ChurnConfig};
use lcp_dynamic::DynamicInstance;
use lcp_graph::generators;

/// The classic 1-bit scheme: the proof is a 2-colouring.
struct Bipartite;
impl Scheme for Bipartite {
    type Node = ();
    type Edge = ();
    fn name(&self) -> String {
        "bipartite".into()
    }
    fn radius(&self) -> usize {
        1
    }
    fn holds(&self, inst: &Instance) -> bool {
        lcp_graph::traversal::is_bipartite(inst.graph())
    }
    fn prove(&self, inst: &Instance) -> Option<Proof> {
        let colors = lcp_graph::traversal::bipartition(inst.graph())?;
        Some(Proof::from_fn(inst.n(), |v| {
            BitString::from_bits([colors[v] == 1])
        }))
    }
    fn verify(&self, view: &View) -> bool {
        let c = view.center();
        let mine = view.proof(c).first();
        mine.is_some()
            && view
                .neighbors(c)
                .iter()
                .all(|&u| view.proof(u).first().is_some_and(|b| Some(b) != mine))
    }
}

fn main() {
    let inst = Instance::unlabeled(generators::cycle(64));
    let mut dynamic = DynamicInstance::seal(Bipartite, inst);
    let n = dynamic.n();

    let run = run_churn(&mut dynamic, &ChurnConfig::new(7), 24, 4);
    println!(
        "{:<28} {:>6} {:>10} verdict",
        "mutation", "impact", "reverified"
    );
    for step in &run.steps {
        println!(
            "{:<28} {:>6} {:>10} {}{}",
            format!("{:?}", step.mutation),
            step.impact,
            step.reverified,
            if step.accepted { "accept" } else { "reject" },
            match step.witness {
                Some(w) => format!(" (witness node {w})"),
                None => String::new(),
            }
        );
    }
    println!(
        "\n{} mutations on n={}: {} verifier runs total (full sweeps would need {}), \
         {} cross-checks, {} mismatches",
        run.steps.len(),
        n,
        run.total_reverified,
        run.steps.len() * n,
        run.checks,
        run.mismatches,
    );
    assert_eq!(run.mismatches, 0, "incremental must match from-scratch");
}
