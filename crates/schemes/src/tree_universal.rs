//! The `Θ(n)` universal scheme on trees (§6.2): "for each node `v` of the
//! tree we encode the structure of `G` and an index that identifies which
//! node of `G` is `v`; the structure of a tree can be encoded in `Θ(n)`
//! bits, and the index requires `Θ(log n)` bits."
//!
//! The tree structure is a 2n-bit balanced-parentheses string (1 =
//! descend, 0 = ascend) over a DFS of a rooted version of the tree; each
//! node also carries its preorder position. Soundness is the covering
//! argument: a connected graph with a locally-bijective map onto a tree
//! *is* that tree.

use lcp_core::{BitReader, BitString, BitWriter, Instance, Proof, Scheme, View};
use lcp_graph::{iso, tree, Graph};

/// A rooted tree shape decoded from parentheses: parent per preorder
/// position (`None` at the root).
#[derive(Clone, Debug, PartialEq, Eq)]
struct Shape {
    parent: Vec<Option<usize>>,
}

impl Shape {
    fn children(&self) -> Vec<Vec<usize>> {
        let mut ch = vec![Vec::new(); self.parent.len()];
        for (v, p) in self.parent.iter().enumerate() {
            if let Some(p) = *p {
                ch[p].push(v);
            }
        }
        ch
    }

    /// Materializes the shape as a [`Graph`] with identifiers `1..=n`.
    fn to_graph(&self) -> Graph {
        let mut g = Graph::with_contiguous_ids(self.parent.len());
        for (v, p) in self.parent.iter().enumerate() {
            if let Some(p) = *p {
                g.add_edge(v, p).expect("tree edges are fresh");
            }
        }
        g
    }
}

/// The universal tree scheme for an arbitrary computable pure property of
/// trees; `Θ(n)` bits per node.
pub struct TreeUniversal<F> {
    name: String,
    decide: F,
}

impl<F> TreeUniversal<F>
where
    F: Fn(&Graph) -> bool,
{
    /// Builds the scheme for `decide` (evaluated on the decoded tree).
    pub fn new(name: impl Into<String>, decide: F) -> Self {
        TreeUniversal {
            name: name.into(),
            decide,
        }
    }

    /// Parentheses encoding + preorder positions for a tree rooted at 0.
    fn encode(g: &Graph) -> (BitString, Vec<usize>) {
        debug_assert!(tree::is_tree(g));
        let t = lcp_graph::spanning::bfs_spanning_tree(g, 0);
        let children = t.children();
        let mut shape = BitWriter::new();
        let mut position = vec![0usize; g.n()];
        let mut next_pos = 0usize;
        // Iterative DFS emitting 1 on entry, 0 on exit.
        let mut stack = vec![(t.root(), 0usize)];
        shape.write_bit(true);
        position[t.root()] = next_pos;
        next_pos += 1;
        while let Some(&mut (v, ref mut i)) = stack.last_mut() {
            if *i < children[v].len() {
                let c = children[v][*i];
                *i += 1;
                shape.write_bit(true);
                position[c] = next_pos;
                next_pos += 1;
                stack.push((c, 0));
            } else {
                shape.write_bit(false);
                stack.pop();
            }
        }
        (shape.finish(), position)
    }

    /// Parses a parentheses string back into a shape.
    fn parse_shape(bits: &[bool]) -> Option<Shape> {
        if bits.is_empty() || !bits[0] {
            return None;
        }
        let mut parent = vec![None];
        let mut stack = vec![0usize];
        for &b in &bits[1..] {
            if b {
                let p = *stack.last()?;
                parent.push(Some(p));
                stack.push(parent.len() - 1);
            } else {
                stack.pop()?;
            }
        }
        stack.is_empty().then_some(Shape { parent })
    }
}

impl<F> Scheme for TreeUniversal<F>
where
    F: Fn(&Graph) -> bool,
{
    type Node = ();
    type Edge = ();

    fn name(&self) -> String {
        format!("tree-universal:{}", self.name)
    }

    fn radius(&self) -> usize {
        1
    }

    fn holds(&self, inst: &Instance) -> bool {
        tree::is_tree(inst.graph()) && (self.decide)(inst.graph())
    }

    fn prove(&self, inst: &Instance) -> Option<Proof> {
        if !self.holds(inst) {
            return None;
        }
        let (shape, position) = Self::encode(inst.graph());
        Some(Proof::from_fn(inst.n(), |v| {
            let mut w = BitWriter::new();
            w.write_gamma(position[v] as u64);
            for b in shape.iter() {
                w.write_bit(b);
            }
            w.finish()
        }))
    }

    fn verify(&self, view: &View) -> bool {
        let decode = |u: usize| -> Option<(usize, Vec<bool>)> {
            let mut r = BitReader::new(view.proof(u));
            let pos = r.read_gamma().ok()? as usize;
            let mut bits = Vec::with_capacity(r.remaining());
            while !r.is_exhausted() {
                bits.push(r.read_bit().ok()?);
            }
            Some((pos, bits))
        };
        let c = view.center();
        let Some((my_pos, my_shape_bits)) = decode(c) else {
            return false;
        };
        let Some(shape) = Self::parse_shape(&my_shape_bits) else {
            return false;
        };
        let n = shape.parent.len();
        if my_pos >= n {
            return false;
        }
        // Local bijection: my neighbours' positions are exactly my
        // encoded parent and children, each exactly once, and all
        // neighbours carry the same shape.
        let children = shape.children();
        let mut expected: Vec<usize> = children[my_pos].clone();
        if let Some(p) = shape.parent[my_pos] {
            expected.push(p);
        }
        expected.sort_unstable();
        let mut got = Vec::with_capacity(view.degree(c));
        for &u in view.neighbors(c) {
            let Some((u_pos, u_shape)) = decode(u) else {
                return false;
            };
            if u_shape != my_shape_bits {
                return false;
            }
            got.push(u_pos);
        }
        got.sort_unstable();
        if got != expected {
            return false;
        }
        // Decide on the decoded tree (a pure property: ids irrelevant).
        (self.decide)(&shape.to_graph())
    }
}

/// §6.2: trees with a *fixpoint-free* automorphism — the `Θ(n)`-complete
/// property of trees.
pub fn tree_fixpoint_free() -> TreeUniversal<impl Fn(&Graph) -> bool> {
    TreeUniversal::new("fixpoint-free-symmetry", |g: &Graph| {
        iso::fixpoint_free_automorphism(g).is_some()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcp_core::evaluate;
    use lcp_core::harness::{
        check_completeness, check_soundness_exhaustive, classify_growth, measure_sizes,
        GrowthClass, Soundness,
    };
    use lcp_graph::{generators, ops, NodeId};

    /// Two copies of a tree joined by an edge between their roots — has
    /// an obvious fixpoint-free swap when the copies are identical.
    fn doubled_tree(n_half: usize, seed: u64) -> Graph {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let t = generators::random_tree(n_half, &mut rng);
        let t2 = ops::shift_ids(&t, 1000);
        ops::join_with_path(&t, 0, &t2, 0, &[]).unwrap()
    }
    use rand::SeedableRng;

    #[test]
    fn doubled_trees_have_fixpoint_free_symmetry() {
        let scheme = tree_fixpoint_free();
        let instances: Vec<Instance> = (3..7)
            .map(|k| Instance::unlabeled(doubled_tree(k, k as u64)))
            .collect();
        check_completeness(
            &scheme,
            &lcp_core::engine::prepare_sweep(&scheme, &instances),
        )
        .unwrap();
    }

    #[test]
    fn star_rejected() {
        // Stars have symmetries but all fix the hub.
        let scheme = tree_fixpoint_free();
        let inst = Instance::unlabeled(generators::star(4));
        assert!(!scheme.holds(&inst));
        assert!(scheme.prove(&inst).is_none());
    }

    #[test]
    fn proof_size_linear() {
        let scheme = TreeUniversal::new("always", |_: &Graph| true);
        let instances: Vec<Instance> = [8usize, 16, 32, 64, 128]
            .iter()
            .map(|&n| Instance::unlabeled(generators::path(n)))
            .collect();
        let points = measure_sizes(
            &scheme,
            &lcp_core::engine::prepare_sweep(&scheme, &instances),
        );
        assert_eq!(classify_growth(&points), GrowthClass::Linear);
    }

    #[test]
    fn wrong_shape_rejected() {
        // Proof encodes a star, instance is a path.
        let scheme = TreeUniversal::new("always", |_: &Graph| true);
        let star = generators::star(3);
        let (shape, position) = TreeUniversal::<fn(&Graph) -> bool>::encode(&star);
        let inst = Instance::unlabeled(generators::path(4));
        let proof = Proof::from_fn(4, |v| {
            let mut w = BitWriter::new();
            w.write_gamma(position[v] as u64);
            for b in shape.iter() {
                w.write_bit(b);
            }
            w.finish()
        });
        assert!(!evaluate(&scheme, &inst, &proof).accepted());
    }

    #[test]
    fn path_with_even_length_fixpoint_free() {
        // P2k has the reversal automorphism with no fixpoint.
        let scheme = tree_fixpoint_free();
        let yes = Instance::unlabeled(generators::path(6));
        let proof = scheme.prove(&yes).unwrap();
        assert!(evaluate(&scheme, &yes, &proof).accepted());
        // P2k+1 fixes its middle node under every automorphism.
        let no = Instance::unlabeled(generators::path(7));
        assert!(!scheme.holds(&no));
    }

    #[test]
    fn tiny_no_instance_exhaustive() {
        // P3: every automorphism fixes the middle; no ≤2-bit proof helps.
        let scheme = tree_fixpoint_free();
        let inst = Instance::unlabeled(generators::path(3));
        match check_soundness_exhaustive(&scheme, &lcp_core::engine::prepare(&scheme, &inst), 2)
            .unwrap()
        {
            Soundness::Holds(_) => {}
            Soundness::Violated(p) => panic!("P3 forged by {p:?}"),
        }
    }

    #[test]
    fn non_tree_is_outside_family() {
        let scheme = tree_fixpoint_free();
        let inst = Instance::unlabeled(generators::cycle(6));
        assert!(!scheme.holds(&inst));
        assert!(scheme.prove(&inst).is_none());
    }

    #[test]
    fn decoy_identifiers_do_not_matter() {
        let scheme = tree_fixpoint_free();
        let g = doubled_tree(4, 9)
            .relabel(|id| NodeId(id.0 * 13 + 5))
            .unwrap();
        let inst = Instance::unlabeled(g);
        let proof = scheme.prove(&inst).unwrap();
        assert!(evaluate(&scheme, &inst, &proof).accepted());
    }
}
