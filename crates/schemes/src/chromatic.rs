//! Chromatic-number schemes: `χ(G) ≤ k` with `O(log k)` bits (§2.2) and
//! `χ(G) > 2` with `Θ(log n)` bits (§5.1).

use lcp_core::components::TreeCert;
use lcp_core::{BatchView, BitReader, BitWriter, Instance, Proof, Scheme, View};
use lcp_graph::{coloring, traversal};

/// `χ(G) ≤ k`: the proof is a proper `k`-colouring, `⌈log₂ k⌉` bits per
/// node (§2.2). Independent of `n` — the `LCP(O(log k))` level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChromaticAtMost {
    /// The colour budget `k ≥ 1` (a global constant known to all nodes).
    pub k: usize,
}

impl ChromaticAtMost {
    fn width(&self) -> u32 {
        usize::max(self.k - 1, 1).ilog2() + 1
    }
}

impl Scheme for ChromaticAtMost {
    type Node = ();
    type Edge = ();

    fn name(&self) -> String {
        format!("chromatic<={}", self.k)
    }

    fn radius(&self) -> usize {
        1
    }

    fn holds(&self, inst: &Instance) -> bool {
        coloring::is_k_colorable(inst.graph(), self.k)
    }

    fn prove(&self, inst: &Instance) -> Option<Proof> {
        let colors = coloring::k_coloring(inst.graph(), self.k)?;
        let width = self.width();
        Some(Proof::from_fn(inst.n(), |v| {
            let mut w = BitWriter::new();
            w.write_u64(colors[v] as u64, width);
            w.finish()
        }))
    }

    fn verify(&self, view: &View) -> bool {
        let width = self.width();
        let color = |u: usize| -> Option<u64> {
            let mut r = BitReader::new(view.proof(u));
            let c = r.read_u64(width).ok()?;
            (r.is_exhausted() && c < self.k as u64).then_some(c)
        };
        let c = view.center();
        let Some(mine) = color(c) else {
            return false;
        };
        view.neighbors(c)
            .iter()
            .all(|&u| color(u).is_some_and(|cu| cu != mine))
    }

    fn supports_batch(&self) -> bool {
        // The bit-sliced compare below shifts by the colour width; a
        // colour record of a word or more has no business in a 64-lane
        // block anyway.
        self.width() < 64
    }

    fn verify_batch(&self, view: &BatchView) -> u64 {
        let width = self.width() as usize;
        if view.cap() < width {
            return 0; // no lane can hold a full colour record
        }
        // Lanes whose record at u is exactly `width` bits encoding a
        // colour < k. The codec is MSB-first: record bit j carries the
        // colour's bit of significance width−1−j, so an MSB-down
        // constant compare against k works directly on lane words.
        let valid = |u: usize| -> u64 {
            let in_range = if (self.k as u64) >= 1u64 << width {
                !0 // every width-bit value is a legal colour
            } else {
                let mut lt = 0u64;
                let mut eq = !0u64;
                for j in 0..width {
                    let cb = view.bit(u, j);
                    if (self.k as u64) >> (width - 1 - j) & 1 == 1 {
                        lt |= eq & !cb;
                        eq &= cb;
                    } else {
                        eq &= !cb;
                    }
                }
                lt
            };
            view.len_eq(u, width) & in_range
        };
        let c = view.center();
        let mut acc = valid(c);
        for &u in view.neighbors(c) {
            if acc == 0 {
                break;
            }
            // Valid lanes hold exactly `width` bits at both nodes, so
            // lane string inequality is exactly colour inequality.
            acc &= valid(u) & view.ne(c, u);
        }
        acc
    }
}

/// `χ(G) > 2` (non-bipartiteness) on connected graphs: `Θ(log n)` bits
/// (§5.1).
///
/// The proof exhibits an odd cycle: a spanning-tree certificate rooted at
/// a cycle node `a` (forcing a unique leader), plus, on cycle nodes, the
/// position along the cycle and the cycle length `L` (odd). The local
/// checks force the cycle labels to trace a single closed walk of odd
/// length `L` through `a` — and a graph with an odd closed walk is not
/// bipartite.
///
/// Per-node proof layout: `TreeCert`, 1 bit `on_cycle`, then γ-coded
/// `position` and `L` when on the cycle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NonBipartite;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct NbCert {
    tree: TreeCert,
    cycle: Option<(u64, u64)>, // (position, length)
}

fn decode_nb(view_proof: lcp_core::ProofRef<'_>) -> Option<NbCert> {
    let mut r = BitReader::new(view_proof);
    let tree = TreeCert::decode(&mut r).ok()?;
    let on_cycle = r.read_bit().ok()?;
    let cycle = if on_cycle {
        Some((r.read_gamma().ok()?, r.read_gamma().ok()?))
    } else {
        None
    };
    r.is_exhausted().then_some(NbCert { tree, cycle })
}

impl Scheme for NonBipartite {
    type Node = ();
    type Edge = ();

    fn name(&self) -> String {
        "chromatic>2".into()
    }

    fn radius(&self) -> usize {
        1
    }

    fn holds(&self, inst: &Instance) -> bool {
        traversal::is_connected(inst.graph())
            && inst.n() > 0
            && !traversal::is_bipartite(inst.graph())
    }

    fn prove(&self, inst: &Instance) -> Option<Proof> {
        let g = inst.graph();
        if !traversal::is_connected(g) || g.n() == 0 {
            return None;
        }
        let cycle = traversal::find_odd_cycle(g)?;
        let len = cycle.len() as u64;
        let mut pos = vec![None; g.n()];
        for (i, &v) in cycle.iter().enumerate() {
            pos[v] = Some(i as u64);
        }
        let tree = lcp_graph::spanning::bfs_spanning_tree(g, cycle[0]);
        let certs = TreeCert::prove(g, &tree);
        Some(Proof::from_fn(g.n(), |v| {
            let mut w = BitWriter::new();
            certs[v].encode(&mut w);
            match pos[v] {
                Some(p) => {
                    w.write_bit(true);
                    w.write_gamma(p);
                    w.write_gamma(len);
                }
                None => {
                    w.write_bit(false);
                }
            }
            w.finish()
        }))
    }

    fn verify(&self, view: &View) -> bool {
        // Single pass, one decode per visible node: the conjunction of
        // the §5.1 tree check (inlined from `TreeCert::verify_at_center`)
        // and the odd-cycle checks. Logically identical to running the
        // two passes separately — every clause is conjunctive — but the
        // hot exhaustive/adversarial loops decode each neighbour once
        // instead of three times.
        let c = view.center();
        let Some(mine) = decode_nb(view.proof(c)) else {
            return false;
        };
        let my_id = view.id(c).0;
        let i_am_root = my_id == mine.tree.root_id;
        // Root self-consistency.
        if mine.tree.dist == 0 {
            if !i_am_root || mine.tree.parent_id != my_id {
                return false;
            }
        } else if i_am_root {
            return false; // non-root node impersonating the root id
        }
        // Cycle sanity: odd length, position in range, root at position 0.
        let cycle = if let Some((p, len)) = mine.cycle {
            if len < 3 || len % 2 == 0 || p >= len {
                return false;
            }
            if (p == 0) != i_am_root {
                return false; // position 0 is reserved for the unique root
            }
            // Predecessor (p−1 mod L) and successor (p+1 mod L).
            Some(((p + len - 1) % len, (p + 1) % len, len))
        } else if i_am_root {
            return false; // the root must lie on the cycle
        } else {
            None
        };
        let mut parent_ok = mine.tree.dist == 0;
        let mut preds = 0;
        let mut succs = 0;
        for &u in view.neighbors(c) {
            let Some(cu) = decode_nb(view.proof(u)) else {
                return false; // malformed neighbours reject everywhere
            };
            if cu.tree.root_id != mine.tree.root_id {
                return false; // neighbours must agree on the root
            }
            if view.id(u).0 == mine.tree.parent_id && cu.tree.dist + 1 == mine.tree.dist {
                parent_ok = true;
            }
            if let (Some((prev, next, len)), Some((q, lu))) = (cycle, cu.cycle) {
                if lu != len {
                    return false; // cycle nodes must agree on the length
                }
                if q == prev {
                    preds += 1;
                }
                if q == next {
                    succs += 1;
                }
            }
        }
        if !parent_ok {
            return false; // non-root: parent must be a visible neighbour
        }
        match cycle {
            Some(_) => preds == 1 && succs == 1,
            None => true, // off-cycle non-root with a consistent tree
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcp_core::evaluate;
    use lcp_core::harness::{
        adversarial_proof_search, check_completeness, check_soundness_exhaustive, classify_growth,
        measure_sizes, GrowthClass, Soundness,
    };
    use lcp_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn colorings_accepted() {
        for k in 2..5 {
            let scheme = ChromaticAtMost { k };
            let instances: Vec<Instance> = vec![
                Instance::unlabeled(generators::cycle(6)),
                Instance::unlabeled(generators::grid(3, 3)),
            ];
            check_completeness(
                &scheme,
                &lcp_core::engine::prepare_sweep(&scheme, &instances),
            )
            .unwrap();
        }
    }

    #[test]
    fn proof_size_depends_on_k_not_n() {
        let mut sizes_by_n = Vec::new();
        for n in [8usize, 32, 128] {
            let inst = Instance::unlabeled(generators::cycle(n));
            let proof = ChromaticAtMost { k: 4 }.prove(&inst).unwrap();
            sizes_by_n.push(proof.size());
        }
        assert!(sizes_by_n.iter().all(|&s| s == 2), "⌈log₂ 4⌉ = 2 bits");
    }

    #[test]
    fn k4_needs_more_than_three_colors() {
        let scheme = ChromaticAtMost { k: 3 };
        let inst = Instance::unlabeled(generators::complete(4));
        assert!(!scheme.holds(&inst));
        match check_soundness_exhaustive(&scheme, &lcp_core::engine::prepare(&scheme, &inst), 2)
            .unwrap()
        {
            Soundness::Holds(_) => {}
            Soundness::Violated(p) => panic!("K4 3-coloured by {p:?}"),
        }
    }

    #[test]
    fn batched_kernel_agrees_with_scalar_verifier() {
        // The bit-sliced colour kernel (MSB-down compare against k)
        // must reproduce the scalar verifier exactly: same exhaustive
        // verdict under both batch policies, across k values on both
        // sides of a power of two (k = 4 makes every width-bit value a
        // legal colour; k = 3 and 5 exercise the lt/eq compare chains)
        // and with string budgets both below and above the record
        // width.
        use lcp_core::harness::check_soundness_exhaustive_policy;
        use lcp_core::{BatchPolicy, Deadline};
        for k in 2..=5usize {
            let scheme = ChromaticAtMost { k };
            let inst = Instance::unlabeled(generators::complete(k + 1));
            let prep = lcp_core::engine::prepare(&scheme, &inst);
            // K6 at max_bits = 3 would be 15⁶ ≈ 11M candidates; stop
            // at 7⁶ there to keep the test fast.
            for max_bits in 1..=(if k < 5 { 3usize } else { 2 }) {
                let run = |policy| {
                    check_soundness_exhaustive_policy(
                        &scheme,
                        &prep,
                        max_bits,
                        &Deadline::none(),
                        policy,
                    )
                    .unwrap()
                };
                let batch = run(BatchPolicy::Auto);
                assert_eq!(
                    batch,
                    run(BatchPolicy::Scalar),
                    "policy divergence at k = {k}, max_bits = {max_bits}"
                );
                match batch {
                    Soundness::Holds(_) => {}
                    Soundness::Violated(p) => panic!("K{} {k}-coloured by {p:?}", k + 1),
                }
            }
        }
    }

    #[test]
    fn out_of_range_color_rejected() {
        let scheme = ChromaticAtMost { k: 3 };
        let inst = Instance::unlabeled(generators::cycle(5));
        let mut proof = scheme.prove(&inst).unwrap();
        let mut w = BitWriter::new();
        w.write_u64(3, 2); // colour 3 with k = 3 is out of range
        proof.set(0, w.finish());
        assert!(!evaluate(&scheme, &inst, &proof).accepted());
    }

    #[test]
    fn odd_cycles_certified_non_bipartite() {
        let instances: Vec<Instance> = (1..6)
            .map(|k| Instance::unlabeled(generators::cycle(2 * k + 3)))
            .collect();
        check_completeness(
            &NonBipartite,
            &lcp_core::engine::prepare_sweep(&NonBipartite, &instances),
        )
        .unwrap();
    }

    #[test]
    fn dense_non_bipartite_graphs_certified() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut instances = Vec::new();
        for _ in 0..10 {
            let g = generators::random_connected(12, 10, &mut rng);
            if !traversal::is_bipartite(&g) {
                instances.push(Instance::unlabeled(g));
            }
        }
        assert!(instances.len() >= 5);
        check_completeness(
            &NonBipartite,
            &lcp_core::engine::prepare_sweep(&NonBipartite, &instances),
        )
        .unwrap();
    }

    #[test]
    fn proof_size_is_logarithmic() {
        let instances: Vec<Instance> = [9usize, 17, 33, 65, 129, 257]
            .iter()
            .map(|&n| Instance::unlabeled(generators::cycle(n)))
            .collect();
        let points = measure_sizes(
            &NonBipartite,
            &lcp_core::engine::prepare_sweep(&NonBipartite, &instances),
        );
        assert_eq!(classify_growth(&points), GrowthClass::Logarithmic);
    }

    #[test]
    fn even_cycle_rejects_all_small_proofs() {
        let inst = Instance::unlabeled(generators::cycle(4));
        match check_soundness_exhaustive(
            &NonBipartite,
            &lcp_core::engine::prepare(&NonBipartite, &inst),
            2,
        )
        .unwrap()
        {
            Soundness::Holds(_) => {}
            Soundness::Violated(p) => panic!("C4 certified non-bipartite by {p:?}"),
        }
        let mut rng = StdRng::seed_from_u64(4);
        let big = Instance::unlabeled(generators::cycle(8));
        assert!(adversarial_proof_search(
            &NonBipartite,
            &lcp_core::engine::prepare(&NonBipartite, &big),
            10,
            600,
            &mut rng
        )
        .is_none());
    }

    #[test]
    fn even_length_claim_rejected() {
        // Take an honest odd-cycle proof on C5 and tamper the length field.
        let inst = Instance::unlabeled(generators::cycle(5));
        let proof = NonBipartite.prove(&inst).unwrap();
        assert!(evaluate(&NonBipartite, &inst, &proof).accepted());
        // Rewrite node 0's record claiming length 4.
        let tree = lcp_graph::spanning::bfs_spanning_tree(inst.graph(), 0);
        let certs = TreeCert::prove(inst.graph(), &tree);
        let mut w = BitWriter::new();
        certs[0].encode(&mut w);
        w.write_bit(true);
        w.write_gamma(0);
        w.write_gamma(4);
        let mut bad = proof.clone();
        bad.set(0, w.finish());
        assert!(!evaluate(&NonBipartite, &inst, &bad).accepted());
    }

    #[test]
    fn bipartite_graph_has_no_odd_cycle_witness() {
        let inst = Instance::unlabeled(generators::grid(3, 4));
        assert!(!NonBipartite.holds(&inst));
        assert!(NonBipartite.prove(&inst).is_none());
    }
}
