//! The §7.1 model `M2`: anonymous networks with port numbering and a
//! leader, and the DFS-interval identifier machinery that makes `M2`
//! equivalent to the unique-identifier model `M1` for `O(log n)`-bit
//! proof labelling schemes.
//!
//! Direction `M1 → M2` of the translation generates *identifiers inside
//! the proof*: run a depth-first traversal of a rooted spanning tree,
//! record each node's discovery time `x(v)` and finishing time `y(v)`,
//! and use the pair as the identifier. The pairs can be checked for
//! global uniqueness by purely local conditions ([`verify_dfs_intervals`])
//! — that is the technical heart of the section, implemented and tested
//! here.

use lcp_core::View;
use lcp_graph::spanning::RootedTree;
use lcp_graph::{Graph, NodeId};

/// A port numbering: each node orders its incident edges `1..=deg(v)`.
///
/// The paper's canonical assignment (used when translating from `M1`)
/// gives port `i` to the neighbour with the `i`-th smallest identifier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PortNumbering {
    /// `ports[v][i]` = neighbour index reached through port `i+1` of `v`.
    ports: Vec<Vec<usize>>,
}

impl PortNumbering {
    /// The canonical identifier-ordered port numbering of `g`.
    pub fn from_graph(g: &Graph) -> Self {
        let ports = g
            .nodes()
            .map(|v| {
                let mut nbrs: Vec<usize> = g.neighbors(v).to_vec();
                nbrs.sort_by_key(|&u| g.id(u));
                nbrs
            })
            .collect();
        PortNumbering { ports }
    }

    /// Degree of `v` (number of ports).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: usize) -> usize {
        self.ports[v].len()
    }

    /// Neighbour behind port `p` (1-based) of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or `p` is not in `1..=degree(v)`.
    pub fn neighbor(&self, v: usize, p: usize) -> usize {
        assert!(p >= 1 && p <= self.ports[v].len(), "port {p} out of range");
        self.ports[v][p - 1]
    }

    /// The port of `v` that leads to `u`, if they are adjacent.
    pub fn port_to(&self, v: usize, u: usize) -> Option<usize> {
        self.ports[v].iter().position(|&w| w == u).map(|i| i + 1)
    }
}

/// An anonymized local view: everything a [`View`] carries *except* node
/// identifiers, with neighbour lists in port order.
///
/// `M2` verifiers take a `PortView`, so the type system guarantees they
/// cannot depend on identifiers. View indices remain as arbitrary local
/// handles (they carry no global information).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PortView<N = (), E = ()> {
    center: usize,
    radius: usize,
    dist: Vec<usize>,
    /// Port-ordered adjacency.
    adj: Vec<Vec<usize>>,
    node_data: Vec<N>,
    proofs: Vec<lcp_core::BitString>,
    edge_data: lcp_core::EdgeMap<E>,
}

impl<N: Clone, E: Clone> PortView<N, E> {
    /// Strips the identifiers from a view, ordering each adjacency list
    /// by neighbour identifier (the canonical port order) first.
    pub fn from_view(view: &View<N, E>) -> Self {
        let adj = view
            .nodes()
            .map(|u| {
                let mut nbrs: Vec<usize> = view.neighbors(u).to_vec();
                nbrs.sort_by_key(|&w| view.id(w));
                nbrs
            })
            .collect();
        PortView {
            center: view.center(),
            radius: view.radius(),
            dist: view.nodes().map(|u| view.dist(u)).collect(),
            adj,
            node_data: view.nodes().map(|u| view.node_label(u).clone()).collect(),
            proofs: view.nodes().map(|u| view.proof(u).to_bitstring()).collect(),
            edge_data: view
                .edges()
                .into_iter()
                .filter_map(|(u, w)| view.edge_label(u, w).map(|l| ((u, w), l.clone())))
                .collect(),
        }
    }
}

impl<N, E> PortView<N, E> {
    /// The centre's local handle.
    pub fn center(&self) -> usize {
        self.center
    }

    /// The extraction radius of the underlying view.
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// Number of visible nodes.
    pub fn n(&self) -> usize {
        self.dist.len()
    }

    /// Distance of `u` from the centre.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn dist(&self, u: usize) -> usize {
        self.dist[u]
    }

    /// Port-ordered neighbours of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn neighbors(&self, u: usize) -> &[usize] {
        &self.adj[u]
    }

    /// The node label of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn node_label(&self, u: usize) -> &N {
        &self.node_data[u]
    }

    /// The proof string of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn proof(&self, u: usize) -> &lcp_core::BitString {
        &self.proofs[u]
    }

    /// The edge label of `{u, w}`, if present.
    pub fn edge_label(&self, u: usize, w: usize) -> Option<&E> {
        self.edge_data.get(&lcp_graph::norm_edge(u, w))
    }
}

/// Discovery/finish interval labels of a depth-first traversal of a
/// rooted spanning tree; children are visited in port (identifier) order.
///
/// The clock ticks once at every discovery and once at every finish, so
/// with `k` covered nodes all values lie in `1..=2k` and every value is
/// used exactly once.
///
/// # Panics
///
/// Panics if the tree does not cover all of `g`.
pub fn dfs_interval_labels(g: &Graph, tree: &RootedTree) -> Vec<(usize, usize)> {
    assert_eq!(tree.size(), g.n(), "tree must span the graph");
    let mut children = tree.children();
    for ch in &mut children {
        ch.sort_by_key(|&c| g.id(c));
    }
    let mut x = vec![0usize; g.n()];
    let mut y = vec![0usize; g.n()];
    let mut clock = 0usize;
    // Iterative DFS over tree edges only.
    let mut stack = vec![(tree.root(), 0usize)];
    clock += 1;
    x[tree.root()] = clock;
    while let Some(&mut (v, ref mut next_child)) = stack.last_mut() {
        if *next_child < children[v].len() {
            let c = children[v][*next_child];
            *next_child += 1;
            clock += 1;
            x[c] = clock;
            stack.push((c, 0));
        } else {
            clock += 1;
            y[v] = clock;
            stack.pop();
        }
    }
    x.into_iter().zip(y).collect()
}

/// Checks the *local* DFS-interval conditions at every node; all-true
/// implies the labels are exactly a DFS numbering of the tree, hence
/// globally unique — this is what lets an `M2` verifier trust
/// proof-supplied identifiers.
///
/// Per-node conditions (each involving only a node, its parent, and its
/// children — radius 1 in the tree):
///
/// 1. the root has `x = 1`;
/// 2. every node has `x < y`;
/// 3. a leaf has `y = x + 1`;
/// 4. children `c₁, …, c_k` ordered by `x` satisfy `x(c₁) = x(v) + 1`,
///    `x(c_{i+1}) = y(c_i) + 1`, and `y(v) = y(c_k) + 1`.
///
/// Returns the indices of nodes whose local check fails (empty = valid).
pub fn verify_dfs_intervals(tree: &RootedTree, labels: &[(usize, usize)]) -> Vec<usize> {
    let n = labels.len();
    let children = tree.children();
    let mut bad = Vec::new();
    for v in 0..n {
        if !tree.covers(v) {
            bad.push(v);
            continue;
        }
        let (xv, yv) = labels[v];
        let mut ok = xv < yv;
        if v == tree.root() {
            ok &= xv == 1;
        }
        let mut ch: Vec<usize> = children[v].clone();
        ch.sort_by_key(|&c| labels[c].0);
        if ch.is_empty() {
            ok &= yv == xv + 1;
        } else {
            ok &= labels[ch[0]].0 == xv + 1;
            for w in ch.windows(2) {
                ok &= labels[w[1]].0 == labels[w[0]].1 + 1;
            }
            ok &= yv == labels[ch[ch.len() - 1]].1 + 1;
        }
        if !ok {
            bad.push(v);
        }
    }
    bad
}

/// Packs a DFS interval into a unique identifier: `id = x · 2(k+1) + y`
/// where `k` bounds the node count. Injective because `x` alone is unique.
pub fn interval_to_id(x: usize, y: usize, k: usize) -> NodeId {
    NodeId((x as u64) * 2 * (k as u64 + 1) + y as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcp_core::{Instance, Proof};
    use lcp_graph::spanning::bfs_spanning_tree;
    use lcp_graph::{generators, NodeId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn port_numbering_orders_by_id() {
        // Star whose leaves were added with descending ids.
        let mut g = Graph::from_ids([NodeId(10), NodeId(5), NodeId(3), NodeId(8)]).unwrap();
        g.add_edge(0, 1).unwrap();
        g.add_edge(0, 2).unwrap();
        g.add_edge(0, 3).unwrap();
        let pn = PortNumbering::from_graph(&g);
        assert_eq!(pn.degree(0), 3);
        // Port order: ids 3 (idx 2), 5 (idx 1), 8 (idx 3).
        assert_eq!(pn.neighbor(0, 1), 2);
        assert_eq!(pn.neighbor(0, 2), 1);
        assert_eq!(pn.neighbor(0, 3), 3);
        assert_eq!(pn.port_to(0, 3), Some(3));
        assert_eq!(pn.port_to(1, 0), Some(1));
        assert_eq!(pn.port_to(1, 2), None);
    }

    #[test]
    fn dfs_intervals_are_a_permutation_of_1_to_2n() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let g = generators::random_connected(10, 5, &mut rng);
            let tree = bfs_spanning_tree(&g, 0);
            let labels = dfs_interval_labels(&g, &tree);
            let mut all: Vec<usize> = labels.iter().flat_map(|&(x, y)| [x, y]).collect();
            all.sort_unstable();
            assert_eq!(all, (1..=2 * g.n()).collect::<Vec<_>>());
            assert!(verify_dfs_intervals(&tree, &labels).is_empty());
        }
    }

    #[test]
    fn local_checks_reject_tampered_labels() {
        let g = generators::grid(3, 3);
        let tree = bfs_spanning_tree(&g, 4);
        let mut labels = dfs_interval_labels(&g, &tree);
        // Swap two nodes' intervals: some local check must fail.
        labels.swap(0, 8);
        assert!(!verify_dfs_intervals(&tree, &labels).is_empty());
    }

    #[test]
    fn local_checks_reject_shifted_labels() {
        let g = generators::path(5);
        let tree = bfs_spanning_tree(&g, 0);
        let mut labels = dfs_interval_labels(&g, &tree);
        for l in &mut labels {
            l.0 += 1;
            l.1 += 1;
        }
        // Root no longer has x = 1.
        let bad = verify_dfs_intervals(&tree, &labels);
        assert!(bad.contains(&tree.root()));
    }

    #[test]
    fn local_checks_reject_duplicated_subtree_labels() {
        let g = generators::star(3);
        let tree = bfs_spanning_tree(&g, 0);
        let mut labels = dfs_interval_labels(&g, &tree);
        // Give two leaves the same interval: the parent's chaining fails.
        labels[2] = labels[1];
        assert!(!verify_dfs_intervals(&tree, &labels).is_empty());
    }

    #[test]
    fn interval_ids_are_unique() {
        let g = generators::complete_binary_tree(4);
        let tree = bfs_spanning_tree(&g, 0);
        let labels = dfs_interval_labels(&g, &tree);
        let ids: std::collections::HashSet<NodeId> = labels
            .iter()
            .map(|&(x, y)| interval_to_id(x, y, g.n()))
            .collect();
        assert_eq!(ids.len(), g.n());
    }

    #[test]
    fn port_view_hides_ids_but_keeps_structure() {
        let g = generators::cycle(5);
        let inst = Instance::unlabeled(g);
        let view = View::extract(&inst, &Proof::empty(5), 0, 2);
        let pv = PortView::from_view(&view);
        assert_eq!(pv.n(), view.n());
        assert_eq!(pv.center(), view.center());
        assert_eq!(pv.dist(pv.center()), 0);
        // Same degree sequence, port-ordered.
        for u in 0..pv.n() {
            assert_eq!(pv.neighbors(u).len(), view.neighbors(u).len());
        }
    }

    use lcp_graph::Graph;
}
