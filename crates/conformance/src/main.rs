//! `lcp-campaign` — the conformance-campaign CLI.
//!
//! ```text
//! cargo run -p lcp-conformance --release -- --profile smoke --seed 7 --json report.json
//! cargo run -p lcp-conformance --release -- --churn --seed 7 --json churn.json
//! ```
//!
//! Exit codes: `0` green, `1` usage error, `2` conformance failures
//! (static check failures, or incremental-vs-full mismatches in
//! `--churn` mode).

use lcp_conformance::churn::{default_steps, run_churn_campaign, ChurnReport};
use lcp_conformance::{run_campaign, CampaignConfig, CellStatus, Profile, Report, Shard};
use lcp_graph::families::GraphFamily;

const USAGE: &str = "\
lcp-campaign — sweep every registered scheme across a seeded family matrix

USAGE:
    lcp-campaign [OPTIONS]

OPTIONS:
    --profile <smoke|full>   preset sizes and budgets        [default: smoke]
    --seed <u64>             campaign seed                   [default: 7]
    --sizes <a,b,c>          override instance sizes
    --scheme <id>            run one registry entry only
    --family <name>          run one graph family only
    --tamper-trials <n>      bit-flip probes per yes cell
    --adversarial-iters <n>  hill-climb steps per no cell
    --shard <i/N>            run only the cells of shard i out of N; the
                             union of all N reports is byte-identical to
                             the unsharded run (merge with campaign_merge)
    --churn                  dynamic mode: churn every cell with seeded
                             mutations, checking incremental reverify
                             against from-scratch evaluation
    --churn-steps <n>        mutations per churn cell        [default: per profile]
    --json <path>            write the JSON report ('-' for stdout)
    --bench-out <path>       write per-cell sizes/timings (BENCH-style JSON)
    --no-timing              omit wall-clock fields from the JSON
    --list                   list registry entries and exit
    --quiet                  suppress the per-scheme table
    --help                   this text
";

struct Args {
    config: CampaignConfig,
    churn: bool,
    churn_steps: Option<usize>,
    json: Option<String>,
    bench_out: Option<String>,
    include_timing: bool,
    list: bool,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut profile = Profile::Smoke;
    let mut seed = 7u64;
    let mut sizes: Option<Vec<usize>> = None;
    let mut scheme = None;
    let mut family = None;
    let mut tamper = None;
    let mut adversarial = None;
    let mut shard = None;
    let mut churn = false;
    let mut churn_steps = None;
    let mut json = None;
    let mut bench_out = None;
    let mut include_timing = true;
    let mut list = false;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--profile" => {
                let v = value("--profile")?;
                profile = Profile::parse(&v).ok_or_else(|| format!("unknown profile '{v}'"))?;
            }
            "--seed" => {
                let v = value("--seed")?;
                seed = v.parse().map_err(|_| format!("bad seed '{v}'"))?;
            }
            "--sizes" => {
                let v = value("--sizes")?;
                let parsed: Result<Vec<usize>, _> = v.split(',').map(str::parse).collect();
                sizes = Some(parsed.map_err(|_| format!("bad sizes '{v}'"))?);
            }
            "--scheme" => scheme = Some(value("--scheme")?),
            "--family" => {
                let v = value("--family")?;
                family =
                    Some(GraphFamily::parse(&v).ok_or_else(|| format!("unknown family '{v}'"))?);
            }
            "--tamper-trials" => {
                let v = value("--tamper-trials")?;
                tamper = Some(v.parse().map_err(|_| format!("bad count '{v}'"))?);
            }
            "--adversarial-iters" => {
                let v = value("--adversarial-iters")?;
                adversarial = Some(v.parse().map_err(|_| format!("bad count '{v}'"))?);
            }
            "--shard" => {
                let v = value("--shard")?;
                shard = Some(
                    Shard::parse(&v).ok_or_else(|| format!("bad shard '{v}' (want i/N, i < N)"))?,
                );
            }
            "--churn" => churn = true,
            "--churn-steps" => {
                let v = value("--churn-steps")?;
                churn_steps = Some(v.parse().map_err(|_| format!("bad count '{v}'"))?);
            }
            "--json" => json = Some(value("--json")?),
            "--bench-out" => bench_out = Some(value("--bench-out")?),
            "--no-timing" => include_timing = false,
            "--list" => list = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }

    let mut config = CampaignConfig::for_profile(profile, seed);
    if let Some(s) = sizes {
        config.sizes = s;
    }
    if let Some(t) = tamper {
        config.tamper_trials = t;
    }
    if let Some(a) = adversarial {
        config.adversarial_iterations = a;
    }
    config.scheme_filter = scheme;
    config.family_filter = family;
    config.shard = shard;
    Ok(Args {
        config,
        churn,
        churn_steps,
        json,
        bench_out,
        include_timing,
        list,
        quiet,
    })
}

fn print_churn_table(report: &ChurnReport) {
    println!(
        "{:<32} {:<10} {:>4} {:>5} {:>6} {:>8} {:>9}  incr/full ms",
        "scheme", "family", "n", "steps", "checks", "miss", "work ‰"
    );
    println!("{}", "-".repeat(100));
    for c in report.cells.iter().filter(|c| !c.skipped) {
        println!(
            "{:<32} {:<10} {:>4} {:>5} {:>6} {:>8} {:>9}  {}/{}",
            c.scheme,
            c.family.name(),
            c.n,
            c.steps,
            c.checks,
            c.mismatches,
            c.reverified_permille,
            c.incremental_ms,
            c.full_ms,
        );
    }
    println!();
}

fn run_churn_mode(args: &Args) -> i32 {
    let steps = args
        .churn_steps
        .unwrap_or_else(|| default_steps(args.config.profile));
    let report = run_churn_campaign(&args.config, steps);
    if !args.quiet {
        print_churn_table(&report);
    }
    let shard_note = report
        .shard
        .map_or_else(String::new, |s| format!(", shard {s}"));
    println!(
        "churn campaign: {} cells ({} ran) × {} mutations — {} mismatches ({} ms, seed {}{})",
        report.cells.len(),
        report.ran(),
        report.steps,
        report.mismatches(),
        report.wall_ms,
        report.seed,
        shard_note,
    );
    for f in report.failures() {
        eprintln!("FAIL: {f}");
    }
    if let Some(path) = &args.json {
        let json = report.to_json(args.include_timing);
        if path == "-" {
            print!("{json}");
        } else if let Err(e) = std::fs::write(path, &json) {
            eprintln!("error: cannot write {path}: {e}");
            return 1;
        } else {
            println!("churn report written to {path}");
        }
    }
    // Like the static campaign, --bench-out is the always-timed
    // per-cell perf series.
    if let Some(path) = &args.bench_out {
        let json = report.to_bench_json();
        if path == "-" {
            print!("{json}");
        } else if let Err(e) = std::fs::write(path, &json) {
            eprintln!("error: cannot write {path}: {e}");
            return 1;
        } else {
            println!("bench series written to {path}");
        }
    }
    i32::from(!report.ok()) * 2
}

fn print_table(report: &Report) {
    println!(
        "{:<32} {:<10} {:>4} {:>4} {:>4}  {:<12} {:<12} ok",
        "scheme", "row", "pass", "fail", "skip", "claimed", "measured"
    );
    println!("{}", "-".repeat(92));
    for s in &report.schemes {
        let count = |st: CellStatus| s.cells.iter().filter(|c| c.status == st).count();
        println!(
            "{:<32} {:<10} {:>4} {:>4} {:>4}  {:<12} {:<12} {}",
            s.id,
            s.paper_row,
            count(CellStatus::Pass),
            count(CellStatus::Fail),
            count(CellStatus::Skip),
            s.claimed_bound,
            s.measured_growth
                .map_or_else(|| "(small n)".into(), |g| g.to_string()),
            match s.bound_ok {
                Some(true) => "✓",
                Some(false) => "✗",
                None => "—",
            }
        );
    }
    println!();
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(1);
        }
    };

    // A typo'd --scheme would otherwise run a 0-cell campaign that
    // reports green — fail loudly instead, like --family parsing does.
    if let Some(id) = &args.config.scheme_filter {
        if !lcp_conformance::campaign_registry()
            .iter()
            .any(|e| e.id == *id)
        {
            eprintln!("error: unknown scheme '{id}' (see --list for registry ids)");
            std::process::exit(1);
        }
    }

    if args.list {
        for e in lcp_conformance::campaign_registry() {
            let families: Vec<&str> = e.families.iter().map(|f| f.name()).collect();
            println!(
                "{:<32} {:<10} {:<14} r={} families={}",
                e.id,
                e.paper_row,
                e.claimed_bound,
                e.radius,
                families.join(",")
            );
        }
        return;
    }

    if args.churn {
        std::process::exit(run_churn_mode(&args));
    }

    let report = run_campaign(&args.config);

    if !args.quiet {
        print_table(&report);
    }
    let shard_note = report
        .shard
        .map_or_else(String::new, |s| format!(", shard {s}"));
    println!(
        "campaign: {} cells — {} passed, {} failed, {} inapplicable \
         ({} ms, seed {}{}, skeleton cache {} hits / {} builds)",
        report.cell_count(),
        report.count(CellStatus::Pass),
        report.count(CellStatus::Fail),
        report.count(CellStatus::Skip),
        report.wall_ms,
        report.seed,
        shard_note,
        report.cache_hits,
        report.cache_misses,
    );
    for f in report.failures() {
        eprintln!("FAIL: {f}");
    }

    if let Some(path) = &args.json {
        let json = report.to_json(args.include_timing);
        if path == "-" {
            print!("{json}");
        } else if let Err(e) = std::fs::write(path, &json) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        } else {
            println!("report written to {path}");
        }
    }

    // The BENCH-style artifact always carries timings — it is the
    // perf-history series, not the diffable conformance report.
    if let Some(path) = &args.bench_out {
        let json = report.to_bench_json();
        if path == "-" {
            print!("{json}");
        } else if let Err(e) = std::fs::write(path, &json) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        } else {
            println!("bench series written to {path}");
        }
    }

    std::process::exit(if report.ok() { 0 } else { 2 });
}
