//! Offline drop-in subset of `criterion`.
//!
//! The build environment has no registry access, so the benchmarking API
//! this workspace's `benches/` use is reimplemented here behind the same
//! paths: [`Criterion`], [`BenchmarkId`], benchmark groups with
//! `sample_size` / `bench_function` / `bench_with_input`, and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is warmed up once, then timed for
//! `sample_size` samples; the mean and minimum per-iteration wall time
//! are printed in criterion-like layout. In `--test` mode (what
//! `cargo bench -- --test` passes, and what CI smoke runs use) each
//! benchmark body runs exactly once and nothing is timed. There is no
//! statistical analysis, HTML report, or baseline persistence — swap the
//! path dependency for the real crate once a registry is reachable.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Formats a duration in criterion-like adaptive units.
fn fmt_time(d: Duration) -> String {
    let ns = d.as_secs_f64() * 1e9;
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// The benchmark driver.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: false,
            filter: None,
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Builds a driver from the process arguments (`cargo bench` passes
    /// `--bench`; `-- --test` requests smoke mode; a bare string filters
    /// benchmark names by substring).
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => c.test_mode = true,
                s if s.starts_with("--") => {}
                s => c.filter = Some(s.to_string()),
            }
        }
        c
    }

    /// Whether `--test` smoke mode is active.
    pub fn is_test_mode(&self) -> bool {
        self.test_mode
    }

    /// Whether `name` survives the command-line filter — for bench code
    /// that does untimed side work (snapshots, comparisons) outside the
    /// `bench_function` registration path and should honour filtering.
    pub fn filter_matches(&self, name: &str) -> bool {
        self.selected(name)
    }

    fn selected(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.default_sample_size;
        self.run_one(id.to_string(), samples, f);
    }

    fn run_one<F>(&mut self, full_name: String, samples: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if !self.selected(&full_name) {
            return;
        }
        let mut b = Bencher {
            test_mode: self.test_mode,
            samples,
            total: Duration::ZERO,
            iters: 0,
            min: Duration::MAX,
        };
        f(&mut b);
        if self.test_mode {
            println!("test {full_name} ... ok");
        } else if b.iters > 0 {
            let mean = b.total / b.iters as u32;
            println!(
                "{full_name:<48} time: [mean {} / best {}]  ({} iterations)",
                fmt_time(mean),
                fmt_time(b.min),
                b.iters,
            );
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<S: Into<String>, F>(&mut self, id: S, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let samples = self.sample_size.unwrap_or(self.c.default_sample_size);
        self.c.run_one(full, samples, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id.render(), |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark identifier.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Builds an identifier from a function name and a displayed parameter.
    pub fn new<S: Into<String>, P: std::fmt::Display>(function: S, parameter: P) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    fn render(&self) -> String {
        format!("{}/{}", self.function, self.parameter)
    }
}

/// Passed to each benchmark body; [`Bencher::iter`] times the closure.
pub struct Bencher {
    test_mode: bool,
    samples: usize,
    total: Duration,
    iters: usize,
    min: Duration,
}

impl Bencher {
    /// Runs `f` once in `--test` mode; otherwise warms up once and times
    /// `sample_size` iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        black_box(f()); // warm-up
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            let elapsed = start.elapsed();
            self.total += elapsed;
            self.min = self.min.min(elapsed);
            self.iters += 1;
        }
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut ran = 0usize;
        let mut group = c.benchmark_group("g");
        group.sample_size(3).bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        group.finish();
        assert_eq!(ran, 4, "one warm-up plus three samples");
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            test_mode: true,
            ..Criterion::default()
        };
        let mut ran = 0usize;
        c.bench_function("once", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert_eq!(ran, 1);
    }

    #[test]
    fn filter_skips_unmatched() {
        let mut c = Criterion {
            filter: Some("match-me".into()),
            ..Criterion::default()
        };
        let mut ran = 0usize;
        c.bench_function("other", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 0);
        c.bench_function("match-me-too", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn id_renders_function_and_param() {
        assert_eq!(BenchmarkId::new("f", 32).render(), "f/32");
    }
}
