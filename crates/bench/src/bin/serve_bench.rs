//! Residency economics of `lcp-serve`, measured over a real socket:
//! what does keeping a cell resident buy compared to paying the cold
//! prepare-and-verify price per request?
//!
//! Workload: the bipartiteness cell on an n ≈ 10⁴ cycle, served over
//! loopback. Three latencies:
//!
//! * `cold` — prepare + verify of a never-seen cell (registry build,
//!   ground truth, skeleton BFS, completeness sweep). Distinct seeds
//!   per sample keep every sample genuinely cold.
//! * `resident verify` — the same full verify against the already-
//!   resident cell: zero skeleton rebuilds, pure sweep + wire cost.
//! * `session mutate` — one mutation round-trip inside a churn
//!   session: incremental reverify of the dirty ball only.
//!
//! The committed reference is `BENCH_serve.json` (README § Benchmarks);
//! the acceptance target is session reverify ≥ 100× faster than cold
//! prepare-and-verify, and in practice the gap is far larger. Snapshot
//! policy matches the criterion benches: casual runs write to
//! `target/`, `LCP_BENCH_SNAPSHOT=1` refreshes the committed file.
//!
//! `serve_bench --smoke` shrinks the workload to run in milliseconds
//! (tier-1 / CI smoke); smoke runs never write a snapshot.

use lcp_core::json::Json;
use lcp_graph::families::GraphFamily;
use lcp_schemes::registry::Polarity;
use lcp_serve::{CellCoord, Client, Server, ServerConfig, WireMutation};
use std::fmt::Write as _;
use std::time::Instant;

fn coord(n: usize, seed: u64) -> CellCoord {
    CellCoord {
        scheme: "bipartite".into(),
        family: GraphFamily::Cycle,
        n,
        seed,
        polarity: Polarity::Yes,
    }
}

/// Median of the collected seconds (samples are few; sort is fine).
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n, cold_samples, verify_samples, mutate_pairs) = if smoke {
        (400, 2, 3, 8)
    } else {
        (10_000, 3, 9, 128)
    };

    let handle = Server::bind(ServerConfig::default())
        .expect("bind loopback")
        .spawn()
        .expect("spawn server");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Cold: distinct seeds, so every sample pays the full load.
    let mut cold = Vec::new();
    for s in 0..cold_samples {
        let c = coord(n, 101 + s as u64);
        let t = Instant::now();
        client.prepare(&c).expect("cold prepare");
        let verdict = client.verify(&c, None).expect("cold verify");
        cold.push(t.elapsed().as_secs_f64());
        assert_eq!(verdict.get("accepted").and_then(Json::as_bool), Some(true));
    }
    let cold_s = median(&mut cold);

    // Resident: one warm cell, repeated sweeps. The miss counter must
    // not move — that is the residency guarantee, asserted here too.
    let warm = coord(n, 7);
    client.prepare(&warm).expect("warm prepare");
    let misses_before = skeleton_misses(&mut client);
    let mut resident = Vec::new();
    for _ in 0..verify_samples {
        let t = Instant::now();
        client.verify(&warm, None).expect("resident verify");
        resident.push(t.elapsed().as_secs_f64());
    }
    let resident_s = median(&mut resident);
    assert_eq!(
        skeleton_misses(&mut client),
        misses_before,
        "resident verifies must not rebuild skeletons"
    );

    // Session: mutation round-trips (insert + delete pairs, returning
    // to the start state), measured individually.
    client.session_open(&warm).expect("session-open");
    let mut mutate = Vec::new();
    for _ in 0..mutate_pairs {
        for m in [
            WireMutation::EdgeInsert(0, 2),
            WireMutation::EdgeDelete(0, 2),
        ] {
            let t = Instant::now();
            client.mutate(&m).expect("session mutate");
            mutate.push(t.elapsed().as_secs_f64());
        }
    }
    let mutate_s = median(&mut mutate);
    client.session_close().expect("session-close");
    handle.stop().expect("clean drain");

    let verify_speedup = cold_s / resident_s;
    let session_speedup = cold_s / mutate_s;
    println!(
        "serve-bench on cycle (n = {n}): cold prepare+verify {cold_s:.4}s, \
         resident verify {resident_s:.5}s ({verify_speedup:.0}x), \
         session mutate {mutate_s:.6}s ({session_speedup:.0}x)"
    );
    if !smoke {
        assert!(
            session_speedup >= 100.0,
            "acceptance: session reverify must be >= 100x faster than cold \
             prepare-and-verify (got {session_speedup:.0}x)"
        );
    }

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"serve-resident-vs-cold\",\n");
    let _ = writeln!(json, "  \"scheme\": \"bipartite\",");
    let _ = writeln!(json, "  \"family\": \"cycle\",");
    let _ = writeln!(json, "  \"n\": {n},");
    let _ = writeln!(json, "  \"cold_prepare_verify_seconds\": {cold_s:.5},");
    let _ = writeln!(json, "  \"resident_verify_seconds\": {resident_s:.6},");
    let _ = writeln!(json, "  \"session_mutate_seconds\": {mutate_s:.7},");
    let _ = writeln!(json, "  \"resident_verify_speedup\": {verify_speedup:.1},");
    let _ = writeln!(json, "  \"session_vs_cold_speedup\": {session_speedup:.1}");
    json.push_str("}\n");

    if smoke {
        return;
    }
    let path = if std::env::var_os("LCP_BENCH_SNAPSHOT").is_some_and(|v| v == "1") {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_serve.json")
    };
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("snapshot written to {path}");
    }
}

fn skeleton_misses(client: &mut Client) -> u64 {
    client
        .stats()
        .expect("stats")
        .get("skeletons")
        .and_then(|s| s.get("misses"))
        .and_then(Json::as_u64)
        .expect("stats carries skeleton counters")
}
