//! `trend` — fold campaign artifacts into the `TREND.json` history.
//!
//! ```text
//! trend --report report.json --bench BENCH_conformance.json \
//!       --commit $(git rev-parse --short HEAD) --history TREND.json
//! ```
//!
//! Reads the existing history (starting fresh when the file is absent),
//! folds one entry per `(commit, seed)` from the run's `report.json` and
//! any number of `--bench` artifacts (one per shard in sharded runs),
//! rewrites the history, and prints the per-cell deltas against the
//! previous entry — proof-size drift and pass/fail flips.
//!
//! Exit codes: `0` folded (even with deltas — the trend records, CI
//! gates elsewhere), `1` usage or parse error.

use lcp_bench::trend::{diff_entries, entry_from_artifacts, TrendHistory};
use std::process::exit;

const USAGE: &str = "\
trend — fold conformance-campaign artifacts into the TREND.json history

USAGE:
    trend --report <report.json> --commit <sha> [OPTIONS]

OPTIONS:
    --report <path>    the campaign's deterministic report   (required)
    --commit <sha>     commit the artifacts came from        (required)
    --bench <path>     timed BENCH_conformance.json series; may repeat
                       (one per shard in sharded campaigns)
    --history <path>   history file to fold into             [default: TREND.json]
    --out <path>       where to write the updated history    [default: --history]
    --help             this text
";

fn main() {
    let mut report = None;
    let mut commit = None;
    let mut benches: Vec<String> = Vec::new();
    let mut history_path = "TREND.json".to_string();
    let mut out = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("error: {name} requires a value\n\n{USAGE}");
                exit(1);
            }
        };
        match arg.as_str() {
            "--report" => report = Some(value("--report")),
            "--commit" => commit = Some(value("--commit")),
            "--bench" => benches.push(value("--bench")),
            "--history" => history_path = value("--history"),
            "--out" => out = Some(value("--out")),
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            other => {
                eprintln!("error: unknown argument '{other}'\n\n{USAGE}");
                exit(1);
            }
        }
    }
    let (Some(report_path), Some(commit)) = (report, commit) else {
        eprintln!("error: --report and --commit are required\n\n{USAGE}");
        exit(1);
    };
    let out = out.unwrap_or_else(|| history_path.clone());

    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            exit(1);
        }
    };

    let report_json = read(&report_path);
    let bench_jsons: Vec<String> = benches.iter().map(|p| read(p)).collect();
    let entry = match entry_from_artifacts(&commit, &report_json, &bench_jsons) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: {report_path}: {e}");
            exit(1);
        }
    };

    let mut history = if std::path::Path::new(&history_path).exists() {
        match TrendHistory::parse(&read(&history_path)) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("error: {history_path}: {e}");
                exit(1);
            }
        }
    } else {
        println!("starting a fresh history ({history_path} not found)");
        TrendHistory::new()
    };

    let deltas = history
        .previous(&entry.commit, entry.seed)
        .map(|prev| diff_entries(prev, &entry))
        .unwrap_or_default();
    let replaced = history.upsert(entry.clone());

    println!(
        "{} {} (seed {}, profile {}): {} cells, {} passed, {} failed — history now {} entries",
        if replaced { "refreshed" } else { "appended" },
        entry.commit,
        entry.seed,
        entry.profile,
        entry.cells,
        entry.passed,
        entry.failed,
        history.entries.len()
    );
    if deltas.is_empty() {
        println!("no per-cell drift vs the previous entry");
    } else {
        println!("drift vs the previous entry:");
        for line in &deltas {
            println!("  {line}");
        }
    }

    if let Err(e) = std::fs::write(&out, history.to_json()) {
        eprintln!("error: cannot write {out}: {e}");
        exit(1);
    }
    println!("history written to {out}");
}
