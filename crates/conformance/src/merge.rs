//! Shard fan-in: merge `--shard i/N` campaign reports back into the
//! whole-matrix report (the `campaign_merge` bin).
//!
//! Sharded campaigns split the shared coordinate enumeration
//! round-robin; each shard writes an ordinary report whose cells carry
//! their **global** coordinate index plus a `"shard"` header block. This
//! module parses those artifacts (via [`lcp_core::json`]), validates the
//! set — same seed/profile/configuration, every shard present exactly
//! once, coordinate union gapless and duplicate-free, per-shard
//! summaries consistent with their cells — and reassembles the full
//! [`Report`] (or [`ChurnReport`] for `--churn` shards), re-deriving the
//! aggregates (summary counts, size points, growth fits) from the
//! *union* of cells rather than trusting any per-shard value.
//!
//! The output of [`Merged::to_json`] is byte-identical to what the
//! unsharded campaign would have written with `--no-timing` — the
//! invariant `tests/sharding.rs` pins and the nightly pipeline re-checks
//! on every merge.

use crate::churn::{ChurnCellResult, ChurnReport};
use crate::{campaign_registry, fit_growth, scheme_shells, CellResult, CellStatus, Report};
use lcp_core::dynamic::TamperProbe;
use lcp_core::json::Json;
use lcp_graph::families::GraphFamily;
use lcp_schemes::registry::{Polarity, SchemeEntry};
use std::fmt;

/// Why a set of shard reports refused to merge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MergeError(pub String);

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for MergeError {}

/// A merged whole-matrix report, in either campaign mode.
#[derive(Clone, Debug)]
pub enum Merged {
    /// Static conformance shards (`lcp-campaign --shard i/N`).
    Static(Report),
    /// Churn shards (`lcp-campaign --churn --shard i/N`).
    Churn(ChurnReport),
}

impl Merged {
    /// Serializes the merged report in the deterministic (`--no-timing`)
    /// form — byte-identical to the unsharded campaign's output.
    pub fn to_json(&self) -> String {
        match self {
            Merged::Static(r) => r.to_json(false),
            Merged::Churn(r) => r.to_json(false),
        }
    }

    /// Whether the merged campaign is green.
    pub fn ok(&self) -> bool {
        match self {
            Merged::Static(r) => r.ok(),
            Merged::Churn(r) => r.ok(),
        }
    }

    /// Human-readable failure lines of the merged campaign.
    pub fn failures(&self) -> Vec<String> {
        match self {
            Merged::Static(r) => r.failures(),
            Merged::Churn(r) => r.failures(),
        }
    }

    /// The campaign seed all shards agreed on (for replay messages).
    pub fn seed(&self) -> u64 {
        match self {
            Merged::Static(r) => r.seed,
            Merged::Churn(r) => r.seed,
        }
    }

    /// Total cells after the merge.
    pub fn cell_count(&self) -> usize {
        match self {
            Merged::Static(r) => r.cell_count(),
            Merged::Churn(r) => r.cells.len(),
        }
    }
}

/// Parses and merges shard reports; `inputs` pairs a display name (the
/// file path) with the raw JSON text.
///
/// Both campaign modes are accepted (detected from the `"mode"` header),
/// but never mixed in one merge.
///
/// # Errors
///
/// Any syntax error, header mismatch between shards, missing/duplicate
/// shard, or coordinate-coverage gap refuses the whole merge.
pub fn merge_reports(inputs: &[(String, String)]) -> Result<Merged, MergeError> {
    if inputs.is_empty() {
        return Err(MergeError("no shard reports to merge".into()));
    }
    let docs: Vec<(&str, Json)> = inputs
        .iter()
        .map(|(name, text)| {
            Json::parse(text)
                .map(|doc| (name.as_str(), doc))
                .map_err(|e| MergeError(format!("{name}: {e}")))
        })
        .collect::<Result<_, _>>()?;
    let churn = docs[0].1.get("mode").and_then(Json::as_str) == Some("churn");
    for (name, doc) in &docs {
        let this = doc.get("mode").and_then(Json::as_str) == Some("churn");
        if this != churn {
            return Err(MergeError(format!(
                "{name}: cannot mix static and churn shard reports in one merge"
            )));
        }
    }
    if churn {
        merge_churn(&docs).map(Merged::Churn)
    } else {
        merge_static(&docs).map(Merged::Static)
    }
}

// ---------------------------------------------------------------------
// Field extraction helpers
// ---------------------------------------------------------------------

fn fail(name: &str, msg: impl fmt::Display) -> MergeError {
    MergeError(format!("{name}: {msg}"))
}

fn field<'j>(name: &str, obj: &'j Json, key: &str) -> Result<&'j Json, MergeError> {
    obj.get(key)
        .ok_or_else(|| fail(name, format_args!("missing field \"{key}\"")))
}

fn str_field<'j>(name: &str, obj: &'j Json, key: &str) -> Result<&'j str, MergeError> {
    field(name, obj, key)?
        .as_str()
        .ok_or_else(|| fail(name, format_args!("\"{key}\" is not a string")))
}

fn usize_field(name: &str, obj: &Json, key: &str) -> Result<usize, MergeError> {
    field(name, obj, key)?
        .as_usize()
        .ok_or_else(|| fail(name, format_args!("\"{key}\" is not an integer")))
}

fn u64_field(name: &str, obj: &Json, key: &str) -> Result<u64, MergeError> {
    field(name, obj, key)?
        .as_u64()
        .ok_or_else(|| fail(name, format_args!("\"{key}\" is not a u64")))
}

fn bool_field(name: &str, obj: &Json, key: &str) -> Result<bool, MergeError> {
    field(name, obj, key)?
        .as_bool()
        .ok_or_else(|| fail(name, format_args!("\"{key}\" is not a boolean")))
}

/// `null` → `None`, integer → `Some`.
fn opt_usize_field(name: &str, obj: &Json, key: &str) -> Result<Option<usize>, MergeError> {
    match field(name, obj, key)? {
        Json::Null => Ok(None),
        v => v
            .as_usize()
            .map(Some)
            .ok_or_else(|| fail(name, format_args!("\"{key}\" is not an integer or null"))),
    }
}

fn array_field<'j>(name: &str, obj: &'j Json, key: &str) -> Result<&'j [Json], MergeError> {
    field(name, obj, key)?
        .as_array()
        .ok_or_else(|| fail(name, format_args!("\"{key}\" is not an array")))
}

fn polarity(name: &str, obj: &Json) -> Result<Polarity, MergeError> {
    match str_field(name, obj, "polarity")? {
        "yes" => Ok(Polarity::Yes),
        "no" => Ok(Polarity::No),
        other => Err(fail(name, format_args!("unknown polarity \"{other}\""))),
    }
}

fn family(name: &str, obj: &Json) -> Result<GraphFamily, MergeError> {
    let raw = str_field(name, obj, "family")?;
    GraphFamily::parse(raw).ok_or_else(|| fail(name, format_args!("unknown family \"{raw}\"")))
}

// ---------------------------------------------------------------------
// Shard-set validation
// ---------------------------------------------------------------------

/// The header fields every shard of one campaign must agree on.
struct Header {
    seed: u64,
    profile: String,
    parallel: bool,
    shard_count: usize,
    shard_index: usize,
}

fn header(name: &str, doc: &Json) -> Result<Header, MergeError> {
    let version = u64_field(name, doc, "version")?;
    if version != 1 {
        return Err(fail(name, format_args!("unsupported version {version}")));
    }
    let shard = field(name, doc, "shard").map_err(|_| {
        fail(
            name,
            "not a shard report (no \"shard\" header — was it produced with --shard i/N?)",
        )
    })?;
    Ok(Header {
        seed: u64_field(name, doc, "seed")?,
        profile: str_field(name, doc, "profile")?.to_string(),
        parallel: bool_field(name, doc, "parallel")?,
        shard_count: usize_field(name, shard, "count")?,
        shard_index: usize_field(name, shard, "index")?,
    })
}

/// Validates the shard set as a whole and returns the agreed headers in
/// input order.
fn check_shard_set(docs: &[(&str, Json)]) -> Result<Vec<Header>, MergeError> {
    let headers: Vec<Header> = docs
        .iter()
        .map(|(name, doc)| header(name, doc))
        .collect::<Result<_, _>>()?;
    let first = &headers[0];
    let mut seen = vec![false; first.shard_count];
    for ((name, _), h) in docs.iter().zip(&headers) {
        if h.seed != first.seed || h.profile != first.profile {
            return Err(fail(
                name,
                format_args!(
                    "shard disagrees on the campaign (seed {} profile {} vs seed {} profile {})",
                    h.seed, h.profile, first.seed, first.profile
                ),
            ));
        }
        if h.parallel != first.parallel {
            return Err(fail(name, "shard disagrees on the parallel flag"));
        }
        if h.shard_count != first.shard_count {
            return Err(fail(
                name,
                format_args!(
                    "shard count {} disagrees with {}",
                    h.shard_count, first.shard_count
                ),
            ));
        }
        if h.shard_index >= h.shard_count {
            return Err(fail(name, "shard index out of range"));
        }
        if std::mem::replace(&mut seen[h.shard_index], true) {
            return Err(fail(
                name,
                format_args!("duplicate shard {}/{}", h.shard_index, h.shard_count),
            ));
        }
    }
    if docs.len() != first.shard_count {
        let missing: Vec<String> = seen
            .iter()
            .enumerate()
            .filter(|(_, &s)| !s)
            .map(|(i, _)| format!("{i}/{}", first.shard_count))
            .collect();
        return Err(MergeError(format!(
            "incomplete shard set: got {} of {} shards (missing {})",
            docs.len(),
            first.shard_count,
            missing.join(", ")
        )));
    }
    Ok(headers)
}

/// Checks that the merged coordinates are exactly `0..total`, no
/// duplicates, no gaps.
fn check_coverage(mut coords: Vec<usize>) -> Result<(), MergeError> {
    coords.sort_unstable();
    for (expect, &got) in coords.iter().enumerate() {
        if got != expect {
            return Err(MergeError(format!(
                "coordinate coverage broken at {expect}: {}",
                if got > expect {
                    format!("cell {expect} is missing")
                } else {
                    format!("cell {got} appears twice")
                }
            )));
        }
    }
    Ok(())
}

/// Looks a scheme id up in the campaign registry (the source of the
/// `&'static` metadata a rebuilt report needs).
fn registry_entry(name: &str, entries: &[SchemeEntry], id: &str) -> Result<usize, MergeError> {
    entries
        .iter()
        .position(|e| e.id == id)
        .ok_or_else(|| fail(name, format_args!("unknown scheme id \"{id}\"")))
}

// ---------------------------------------------------------------------
// Static merge
// ---------------------------------------------------------------------

fn static_check(name: &str, raw: &str) -> Result<&'static str, MergeError> {
    for known in [
        "completeness",
        "soundness-exhaustive",
        "soundness-adversarial",
        "inapplicable",
        "isolation",
    ] {
        if raw == known {
            return Ok(known);
        }
    }
    Err(fail(name, format_args!("unknown check \"{raw}\"")))
}

pub(crate) fn cell_status(name: &str, raw: &str) -> Result<CellStatus, MergeError> {
    match raw {
        "pass" => Ok(CellStatus::Pass),
        "fail" => Ok(CellStatus::Fail),
        "skip" => Ok(CellStatus::Skip),
        "crashed" => Ok(CellStatus::Crashed),
        "timed_out" => Ok(CellStatus::TimedOut),
        other => Err(fail(name, format_args!("unknown status \"{other}\""))),
    }
}

pub(crate) fn static_cell(
    name: &str,
    obj: &Json,
    scheme: &'static str,
) -> Result<CellResult, MergeError> {
    let status = cell_status(name, str_field(name, obj, "status")?)?;
    let tamper = match field(name, obj, "tamper")? {
        Json::Null => None,
        t => Some(TamperProbe {
            trials: usize_field(name, t, "trials")?,
            detected: usize_field(name, t, "detected")?,
            undetected: usize_field(name, t, "undetected")?,
            witness: opt_usize_field(name, t, "witness")?,
        }),
    };
    Ok(CellResult {
        coord: usize_field(name, obj, "coord")?,
        scheme,
        family: family(name, obj)?,
        requested_n: usize_field(name, obj, "requested_n")?,
        n: usize_field(name, obj, "n")?,
        polarity: polarity(name, obj)?,
        holds: bool_field(name, obj, "holds")?,
        status,
        check: static_check(name, str_field(name, obj, "check")?)?,
        proof_bits: opt_usize_field(name, obj, "proof_bits")?,
        witness_node: opt_usize_field(name, obj, "witness_node")?,
        tamper,
        detail: str_field(name, obj, "detail")?.to_string(),
        // Shards are merged from their deterministic (--no-timing) form;
        // the merged report is only ever serialized without timings, and
        // the timeout enrichment exists only in timed output.
        timeout: None,
        wall_ms: 0,
    })
}

fn merge_static(docs: &[(&str, Json)]) -> Result<Report, MergeError> {
    let headers = check_shard_set(docs)?;
    let registry = campaign_registry();

    // The scheme lists (ids, in order) must agree across shards — they
    // are the same filtered registry in every process.
    let scheme_ids: Vec<String> = array_field(docs[0].0, &docs[0].1, "schemes")?
        .iter()
        .map(|s| str_field(docs[0].0, s, "id").map(str::to_string))
        .collect::<Result<_, _>>()?;
    let entries: Vec<SchemeEntry> = scheme_ids
        .iter()
        .map(|id| registry_entry(docs[0].0, &registry, id).map(|i| copy_entry(&registry[i])))
        .collect::<Result<_, _>>()?;

    let mut shells = scheme_shells(&entries);
    let mut coords = Vec::new();
    for (name, doc) in docs {
        let schemes = array_field(name, doc, "schemes")?;
        if schemes.len() != scheme_ids.len() {
            return Err(fail(name, "shard disagrees on the scheme list"));
        }
        let mut shard_cells = 0usize;
        for (idx, scheme) in schemes.iter().enumerate() {
            let id = str_field(name, scheme, "id")?;
            if id != scheme_ids[idx] {
                return Err(fail(
                    name,
                    format_args!("shard disagrees on the scheme list at #{idx} ({id})"),
                ));
            }
            for cell in array_field(name, scheme, "cells")? {
                let parsed = static_cell(name, cell, entries[idx].id)?;
                coords.push(parsed.coord);
                shells[idx].cells.push(parsed);
                shard_cells += 1;
            }
        }
        // Per-shard invariant: its summary matches its own cells.
        let summary = field(name, doc, "summary")?;
        if usize_field(name, summary, "cells")? != shard_cells {
            return Err(fail(name, "shard summary disagrees with its cell count"));
        }
    }
    check_coverage(coords)?;
    for shell in &mut shells {
        shell.cells.sort_by_key(|c| c.coord);
    }
    fit_growth(&mut shells);

    Ok(Report {
        seed: headers[0].seed,
        profile: profile_static(&headers[0].profile),
        parallel: headers[0].parallel,
        shard: None,
        schemes: shells,
        cache_hits: 0,
        cache_misses: 0,
        wall_ms: 0,
    })
}

/// Maps a parsed profile name back to its `&'static` form (reports store
/// profile names as static strings).
fn profile_static(name: &str) -> &'static str {
    match crate::Profile::parse(name) {
        Some(p) => p.name(),
        // Unknown profile names only arise from hand-edited reports;
        // keep the merge going with a recognizable marker.
        None => "unknown",
    }
}

/// Field-by-field copy of a registry entry (every field is `Copy`, but
/// `SchemeEntry` itself does not derive `Clone`).
fn copy_entry(e: &SchemeEntry) -> SchemeEntry {
    SchemeEntry {
        id: e.id,
        title: e.title,
        paper_row: e.paper_row,
        claimed_bound: e.claimed_bound,
        claimed_growth: e.claimed_growth,
        families: e.families,
        radius: e.radius,
        max_n: e.max_n,
        builder: e.builder,
    }
}

// ---------------------------------------------------------------------
// Churn merge
// ---------------------------------------------------------------------

pub(crate) fn churn_cell(
    name: &str,
    obj: &Json,
    scheme: &'static str,
) -> Result<ChurnCellResult, MergeError> {
    let skipped = bool_field(name, obj, "skipped")?;
    let mismatches = usize_field(name, obj, "mismatches")?;
    // The "status" key is only written for crashed/timed_out cells; for
    // the ordinary verdicts it is fully determined by skipped/mismatches.
    let status = match obj.get("status") {
        Some(raw) => {
            let raw = raw
                .as_str()
                .ok_or_else(|| fail(name, "\"status\" is not a string"))?;
            cell_status(name, raw)?
        }
        None if skipped => CellStatus::Skip,
        None if mismatches > 0 => CellStatus::Fail,
        None => CellStatus::Pass,
    };
    Ok(ChurnCellResult {
        coord: usize_field(name, obj, "coord")?,
        scheme,
        family: family(name, obj)?,
        requested_n: usize_field(name, obj, "requested_n")?,
        n: usize_field(name, obj, "n")?,
        polarity: polarity(name, obj)?,
        steps: usize_field(name, obj, "steps")?,
        kinds: (
            usize_field(name, obj, "inserts")?,
            usize_field(name, obj, "deletes")?,
            usize_field(name, obj, "rewrites")?,
        ),
        checks: usize_field(name, obj, "checks")?,
        mismatches,
        max_impact: usize_field(name, obj, "max_impact")?,
        total_reverified: usize_field(name, obj, "total_reverified")?,
        reverified_permille: usize_field(name, obj, "reverified_permille")?,
        skipped,
        status,
        incremental_ms: 0,
        full_ms: 0,
        detail: str_field(name, obj, "detail")?.to_string(),
        timeout: None,
    })
}

fn merge_churn(docs: &[(&str, Json)]) -> Result<ChurnReport, MergeError> {
    let headers = check_shard_set(docs)?;
    let registry = campaign_registry();
    let steps = usize_field(docs[0].0, &docs[0].1, "steps_per_cell")?;

    let mut cells = Vec::new();
    for (name, doc) in docs {
        if usize_field(name, doc, "steps_per_cell")? != steps {
            return Err(fail(name, "shard disagrees on steps_per_cell"));
        }
        let mut shard_cells = 0usize;
        for cell in array_field(name, doc, "cells")? {
            let id = str_field(name, cell, "scheme")?;
            let idx = registry_entry(name, &registry, id)?;
            cells.push(churn_cell(name, cell, registry[idx].id)?);
            shard_cells += 1;
        }
        let summary = field(name, doc, "summary")?;
        if usize_field(name, summary, "cells")? != shard_cells {
            return Err(fail(name, "shard summary disagrees with its cell count"));
        }
    }
    check_coverage(cells.iter().map(|c| c.coord).collect())?;
    cells.sort_by_key(|c| c.coord);

    Ok(ChurnReport {
        seed: headers[0].seed,
        profile: profile_static(&headers[0].profile),
        steps,
        parallel: headers[0].parallel,
        shard: None,
        cells,
        wall_ms: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_campaign, CampaignConfig, Profile, Shard};

    fn tiny(seed: u64, shard: Option<Shard>) -> CampaignConfig {
        CampaignConfig {
            sizes: vec![8],
            tamper_trials: 4,
            adversarial_iterations: 60,
            scheme_filter: Some("bipartite".into()),
            shard,
            ..CampaignConfig::for_profile(Profile::Smoke, seed)
        }
    }

    fn shard_inputs(seed: u64, count: usize) -> Vec<(String, String)> {
        (0..count)
            .map(|index| {
                let report = run_campaign(&tiny(seed, Some(Shard { index, count })));
                (format!("shard{index}.json"), report.to_json(false))
            })
            .collect()
    }

    #[test]
    fn merge_rebuilds_the_unsharded_bytes() {
        let whole = run_campaign(&tiny(7, None)).to_json(false);
        let merged = merge_reports(&shard_inputs(7, 2)).expect("mergeable");
        assert_eq!(merged.to_json(), whole);
    }

    #[test]
    fn refuses_mixed_seeds_and_missing_shards() {
        let mut inputs = shard_inputs(7, 2);
        let err = merge_reports(&inputs[..1]).unwrap_err();
        assert!(err.0.contains("incomplete shard set"), "{err}");

        inputs[1] = shard_inputs(8, 2).remove(1);
        let err = merge_reports(&inputs).unwrap_err();
        assert!(err.0.contains("disagrees on the campaign"), "{err}");
    }

    #[test]
    fn refuses_duplicate_shards_and_unsharded_inputs() {
        let inputs = shard_inputs(7, 2);
        let dup = vec![inputs[0].clone(), inputs[0].clone()];
        let err = merge_reports(&dup).unwrap_err();
        assert!(err.0.contains("duplicate shard"), "{err}");

        let whole = run_campaign(&tiny(7, None)).to_json(false);
        let err = merge_reports(&[("whole.json".into(), whole)]).unwrap_err();
        assert!(err.0.contains("not a shard report"), "{err}");
    }
}
