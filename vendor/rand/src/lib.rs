//! Offline drop-in subset of the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of `rand` APIs the workspace uses are reimplemented here
//! behind the same paths (`rand::rngs::StdRng`, `rand::SeedableRng`,
//! `rand::RngExt`, `rand::seq::SliceRandom`). The generator is a
//! xoshiro256** seeded through SplitMix64 — deterministic for a given
//! seed, which is all the seeded tests and experiments rely on. Swap this
//! path dependency for the real crate once a registry is reachable; no
//! call sites need to change.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed (SplitMix64 key expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing sampling methods (the subset of `rand::Rng` this
/// workspace calls).
pub trait RngExt: RngCore {
    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 high bits give a uniform double in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// A uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by widening multiply (Lemire); the
/// modulo bias at the word sizes used here is far below test sensitivity.
fn bounded(rng: &mut (impl RngCore + ?Sized), bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample an empty range");
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end as u64 - self.start as u64;
                self.start + bounded(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi as u64 - lo as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + bounded(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for the real
    /// `StdRng`; same trait surface, different stream).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 key expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{RngCore, RngExt};

    /// Slice shuffling (the only `rand::seq` API the workspace uses).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000u64), b.random_range(0..1000u64));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.random_range(0..=5u64);
            assert!(y <= 5);
        }
    }

    #[test]
    fn bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle moved something");
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.random_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} out of band");
        }
    }
}
