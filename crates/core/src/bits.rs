//! Bit strings and bit-level codecs.
//!
//! Proof sizes in the LCP model are measured in *bits per node*, so the
//! encodings matter: a scheme claiming `O(log n)` bits must actually emit
//! them. [`BitWriter`] / [`BitReader`] provide fixed-width fields and
//! Elias-γ codes; verifiers treat any decode failure as a rejection.

use std::error::Error;
use std::fmt;

/// A finite binary string, the value a proof assigns to one node (§2.1).
///
/// Bits are addressed in write order (index 0 first). The empty string
/// `ε` is the size-0 proof.
///
/// ```
/// use lcp_core::BitString;
///
/// let s = BitString::from_bits([true, false, true]);
/// assert_eq!(s.len(), 3);
/// assert_eq!(s.get(1), Some(false));
/// assert_eq!(format!("{s:?}"), "bits\"101\"");
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BitString {
    bytes: Vec<u8>,
    len: usize,
}

impl BitString {
    /// The empty bit string `ε`.
    pub fn new() -> Self {
        BitString::default()
    }

    /// Builds a bit string from booleans.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut s = BitString::new();
        for b in bits {
            s.push(b);
        }
        s
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether this is the empty string.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bit at `index`, if in range.
    pub fn get(&self, index: usize) -> Option<bool> {
        (index < self.len).then(|| self.bytes[index / 8] >> (index % 8) & 1 == 1)
    }

    /// The first bit, if any. Handy for 1-bit proofs.
    pub fn first(&self) -> Option<bool> {
        self.get(0)
    }

    /// Appends one bit.
    pub fn push(&mut self, bit: bool) {
        if self.len.is_multiple_of(8) {
            self.bytes.push(0);
        }
        if bit {
            self.bytes[self.len / 8] |= 1 << (self.len % 8);
        }
        self.len += 1;
    }

    /// Iterates over the bits in order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(|i| self.get(i).expect("in range"))
    }

    /// Flips the bit at `index`; used by the adversarial proof mutator.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn flip(&mut self, index: usize) {
        assert!(index < self.len, "bit index {index} out of range");
        self.bytes[index / 8] ^= 1 << (index % 8);
    }
}

impl fmt::Debug for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bits\"")?;
        for b in self.iter() {
            write!(f, "{}", if b { '1' } else { '0' })?;
        }
        write!(f, "\"")
    }
}

impl FromIterator<bool> for BitString {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        BitString::from_bits(iter)
    }
}

/// Errors raised while decoding a bit string.
///
/// A verifier that hits a codec error on a proof must reject: a malformed
/// proof is an invalid proof.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The reader ran past the end of the string.
    OutOfBits,
    /// A γ-coded value had an implausible length prefix.
    Malformed,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::OutOfBits => write!(f, "ran out of bits while decoding"),
            CodecError::Malformed => write!(f, "malformed variable-length code"),
        }
    }
}

impl Error for CodecError {}

/// Incremental writer producing a [`BitString`].
///
/// ```
/// use lcp_core::{BitWriter, BitReader};
///
/// # fn main() -> Result<(), lcp_core::CodecError> {
/// let mut w = BitWriter::new();
/// w.write_u64(5, 3);
/// w.write_bit(true);
/// let s = w.finish();
/// assert_eq!(s.len(), 4);
///
/// let mut r = BitReader::new(&s);
/// assert_eq!(r.read_u64(3)?, 5);
/// assert!(r.read_bit()?);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct BitWriter {
    out: BitString,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Appends one bit.
    pub fn write_bit(&mut self, bit: bool) -> &mut Self {
        self.out.push(bit);
        self
    }

    /// Appends `width` bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in `width` bits or `width > 64`.
    pub fn write_u64(&mut self, value: u64, width: u32) -> &mut Self {
        assert!(width <= 64, "width {width} exceeds u64");
        assert!(
            width == 64 || value < 1u64 << width,
            "value {value} does not fit in {width} bits"
        );
        for i in (0..width).rev() {
            self.out.push(value >> i & 1 == 1);
        }
        self
    }

    /// Appends `value` in Elias-γ code (self-delimiting; codes `v ≥ 0` by
    /// shifting to `v + 1`). Costs `2⌊log₂(v+1)⌋ + 1` bits.
    pub fn write_gamma(&mut self, value: u64) -> &mut Self {
        let v = value + 1;
        let k = v.ilog2();
        for _ in 0..k {
            self.out.push(false);
        }
        self.write_u64(v, k + 1);
        self
    }

    /// Consumes the writer, returning the accumulated string.
    pub fn finish(self) -> BitString {
        self.out
    }

    /// Bits written so far.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }
}

/// Sequential reader over a [`BitString`]; see [`BitWriter`] for a
/// round-trip example.
#[derive(Clone, Debug)]
pub struct BitReader<'a> {
    src: &'a BitString,
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Starts reading `src` from the first bit.
    pub fn new(src: &'a BitString) -> Self {
        BitReader { src, pos: 0 }
    }

    /// Reads one bit.
    ///
    /// # Errors
    ///
    /// [`CodecError::OutOfBits`] at end of string.
    pub fn read_bit(&mut self) -> Result<bool, CodecError> {
        let b = self.src.get(self.pos).ok_or(CodecError::OutOfBits)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads `width` bits as an MSB-first integer.
    ///
    /// # Errors
    ///
    /// [`CodecError::OutOfBits`] if fewer than `width` bits remain.
    pub fn read_u64(&mut self, width: u32) -> Result<u64, CodecError> {
        assert!(width <= 64, "width {width} exceeds u64");
        let mut v = 0u64;
        for _ in 0..width {
            v = (v << 1) | self.read_bit()? as u64;
        }
        Ok(v)
    }

    /// Reads an Elias-γ coded value (inverse of [`BitWriter::write_gamma`]).
    ///
    /// # Errors
    ///
    /// [`CodecError::OutOfBits`] / [`CodecError::Malformed`] on truncated
    /// or absurd prefixes.
    pub fn read_gamma(&mut self) -> Result<u64, CodecError> {
        let mut k = 0u32;
        while !self.read_bit()? {
            k += 1;
            if k > 64 {
                return Err(CodecError::Malformed);
            }
        }
        let mut v = 1u64;
        for _ in 0..k {
            v = (v << 1) | self.read_bit()? as u64;
        }
        Ok(v - 1)
    }

    /// Bits not yet consumed.
    pub fn remaining(&self) -> usize {
        self.src.len() - self.pos
    }

    /// Whether every bit has been consumed.
    ///
    /// Strict verifiers check this: trailing garbage makes a proof
    /// malformed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_string() {
        let s = BitString::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.get(0), None);
        assert_eq!(s.first(), None);
        assert_eq!(format!("{s:?}"), "bits\"\"");
    }

    #[test]
    fn push_and_get() {
        let mut s = BitString::new();
        for i in 0..20 {
            s.push(i % 3 == 0);
        }
        assert_eq!(s.len(), 20);
        for i in 0..20 {
            assert_eq!(s.get(i), Some(i % 3 == 0), "bit {i}");
        }
        assert_eq!(s.get(20), None);
    }

    #[test]
    fn from_iterator_and_iter_roundtrip() {
        let bits = vec![true, true, false, true, false];
        let s: BitString = bits.iter().copied().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), bits);
    }

    #[test]
    fn flip_toggles() {
        let mut s = BitString::from_bits([false, false]);
        s.flip(1);
        assert_eq!(s.get(1), Some(true));
        s.flip(1);
        assert_eq!(s.get(1), Some(false));
    }

    #[test]
    fn fixed_width_roundtrip() {
        for value in [0u64, 1, 5, 255, 1 << 20, u64::MAX] {
            let width = if value == u64::MAX {
                64
            } else {
                64.min(value.max(1).ilog2() + 1)
            };
            let mut w = BitWriter::new();
            w.write_u64(value, width);
            let s = w.finish();
            assert_eq!(s.len() as u32, width);
            let mut r = BitReader::new(&s);
            assert_eq!(r.read_u64(width).unwrap(), value);
            assert!(r.is_exhausted());
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn overflowing_width_panics() {
        BitWriter::new().write_u64(8, 3);
    }

    #[test]
    fn gamma_roundtrip() {
        let mut w = BitWriter::new();
        for v in 0..100u64 {
            w.write_gamma(v);
        }
        w.write_gamma(u64::MAX - 1);
        let s = w.finish();
        let mut r = BitReader::new(&s);
        for v in 0..100u64 {
            assert_eq!(r.read_gamma().unwrap(), v);
        }
        assert_eq!(r.read_gamma().unwrap(), u64::MAX - 1);
        assert!(r.is_exhausted());
    }

    #[test]
    fn gamma_length_matches_formula() {
        for v in [0u64, 1, 2, 3, 7, 8, 100] {
            let mut w = BitWriter::new();
            w.write_gamma(v);
            assert_eq!(w.len() as u32, 2 * (v + 1).ilog2() + 1, "v = {v}");
        }
    }

    #[test]
    fn out_of_bits_errors() {
        let s = BitString::from_bits([true]);
        let mut r = BitReader::new(&s);
        assert!(r.read_bit().is_ok());
        assert_eq!(r.read_bit(), Err(CodecError::OutOfBits));
        let mut r2 = BitReader::new(&s);
        assert_eq!(r2.read_u64(2), Err(CodecError::OutOfBits));
    }

    #[test]
    fn truncated_gamma_errors() {
        // A single 0 bit promises at least one more bit.
        let s = BitString::from_bits([false]);
        assert_eq!(BitReader::new(&s).read_gamma(), Err(CodecError::OutOfBits));
    }

    #[test]
    fn mixed_payload_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bit(true)
            .write_u64(42, 7)
            .write_gamma(9)
            .write_bit(false);
        let s = w.finish();
        let mut r = BitReader::new(&s);
        assert!(r.read_bit().unwrap());
        assert_eq!(r.read_u64(7).unwrap(), 42);
        assert_eq!(r.read_gamma().unwrap(), 9);
        assert!(!r.read_bit().unwrap());
        assert!(r.is_exhausted());
    }

    #[test]
    fn ordering_is_total_and_consistent() {
        // The derived order is unspecified but must be a total order usable
        // as a map key; equal strings compare equal.
        let a = BitString::from_bits([false, true]);
        let b = BitString::from_bits([false, true]);
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
        assert_ne!(a, BitString::from_bits([true, false]));
    }
}
