//! # `lcp-serve` — a resident verification daemon
//!
//! Everything else in this workspace is batch-process-and-exit: the
//! expensive artifacts (skeleton BFS results, prepared cores, dirty-set
//! state) are rebuilt on every invocation, throwing away exactly the
//! reuse that makes incremental verification thousands of times faster
//! than from-scratch checks (`BENCH_dynamic.json`). This crate converts
//! that machinery into a servable capability: a long-lived daemon that
//!
//! * loads registry cells on demand into an LRU-bounded
//!   [`InstanceTable`] whose cells share one process-wide
//!   [`ArtifactSource`](lcp_core::ArtifactSource) — a resident `verify`
//!   issues **zero** skeleton rebuilds, and with `--preload <dir>` even
//!   a restarted daemon maps its cores back from frozen artifact files
//!   (`docs/FORMAT.md`) instead of re-running the skeleton BFS;
//! * answers `prepare` / `verify` / `tamper-probe` / `stats` requests
//!   over a length-prefixed JSON protocol on TCP
//!   ([`protocol`], `docs/PROTOCOL.md`), with per-request
//!   [`Deadline`](lcp_core::Deadline) budgets;
//! * runs stateful **churn sessions**: a client opens a private
//!   [`DynamicInstance`](lcp_dynamic::DynamicInstance) over a resident
//!   cell and streams mutations, getting a sub-millisecond incremental
//!   verdict per mutation;
//! * bounds its own concurrency with a fixed worker pool and answers
//!   overload with a typed busy error instead of queueing unboundedly;
//! * watches itself: every request is counted and timed into the
//!   process metric registry ([`metrics`]), and a `metrics` request
//!   returns the whole registry — serve, engine, and dynamic catalogs —
//!   as Prometheus-style text (`docs/OBSERVABILITY.md`).
//!
//! ```no_run
//! use lcp_serve::{Client, Server, ServerConfig};
//! use lcp_serve::protocol::CellCoord;
//! use lcp_schemes::registry::Polarity;
//! use lcp_graph::families::GraphFamily;
//!
//! let handle = Server::bind(ServerConfig::default())?.spawn()?;
//! let mut client = Client::connect(handle.addr())?;
//! let coord = CellCoord {
//!     scheme: "bipartite".into(),
//!     family: GraphFamily::Cycle,
//!     n: 100,
//!     seed: 7,
//!     polarity: Polarity::Yes,
//! };
//! client.prepare(&coord)?;          // build + warm skeletons, once
//! client.verify(&coord, None)?;     // resident: zero rebuilds
//! handle.stop()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
#![deny(missing_docs)]

pub mod client;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod table;

pub use client::{Client, ClientError};
pub use protocol::{CellCoord, ProtoError, Request, WireLabel, WireMutation, REQUEST_NAMES};
pub use server::{Server, ServerConfig, ServerHandle};
pub use table::{InstanceTable, TableStats};
