//! Cooperative wall-clock budgets for long-running verification loops.
//!
//! A conformance campaign cell is allowed to take a bounded amount of
//! wall time; a runaway exhaustive odometer or a pathologically slow
//! verifier must degrade to a `timed_out` verdict instead of hanging the
//! whole shard. Rust offers no safe preemption, so the budget is
//! **cooperative**: the hot loops in [`crate::harness`],
//! [`crate::engine`], and `lcp_dynamic::run_churn` poll a shared
//! [`Deadline`] token at a coarse stride and unwind cleanly when it has
//! expired.
//!
//! The token is engineered so that the *unbounded* case — every default
//! code path — costs one branch on an `Option` discriminant per stride:
//! results are byte-identical to builds that never heard of deadlines.
//! When a budget is attached, the stride (once per [`CHECK_INTERVAL`]
//! candidates in enumeration loops, finer in per-node sweeps) keeps the
//! `Instant::now()` syscall off the per-candidate fast path.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::metrics;

/// How often enumeration loops poll an attached deadline: every
/// `CHECK_INTERVAL` candidates. A power of two, so the poll guard
/// compiles to a mask-and-branch.
pub const CHECK_INTERVAL: u64 = 1 << 14;

/// A shared, cloneable cancellation/budget token.
///
/// [`Deadline::none`] (the [`Default`]) is unbounded and free to poll.
/// [`Deadline::after`] expires once the wall budget elapses;
/// [`Deadline::manual`] never expires on its own and is tripped with
/// [`Deadline::cancel`] — deterministic cancellation for tests. Clones
/// share one underlying flag, so a token handed to several loops stops
/// all of them at once.
#[derive(Clone, Debug, Default)]
pub struct Deadline {
    inner: Option<Arc<Inner>>,
}

#[derive(Debug)]
struct Inner {
    /// Absolute expiry instant; `None` for purely manual tokens.
    at: Option<Instant>,
    cancelled: AtomicBool,
    /// How many times [`Deadline::expired`] actually ran on this token —
    /// i.e. strided polls that got past the mask, across all clones.
    polls: AtomicU64,
    /// Set by the first poll that observes expiry, so the global
    /// expiration counter counts tokens, not polls.
    tripped: AtomicBool,
}

impl Deadline {
    /// The unbounded deadline: never expires, polls are near-free.
    pub fn none() -> Deadline {
        Deadline { inner: None }
    }

    /// A deadline that expires `budget` from now. `Duration::ZERO`
    /// yields an already-expired token (useful for deterministic tests).
    pub fn after(budget: Duration) -> Deadline {
        Deadline {
            inner: Some(Arc::new(Inner {
                at: Some(Instant::now() + budget),
                cancelled: AtomicBool::new(false),
                polls: AtomicU64::new(0),
                tripped: AtomicBool::new(false),
            })),
        }
    }

    /// A deadline with no timer: it only expires via [`Deadline::cancel`].
    pub fn manual() -> Deadline {
        Deadline {
            inner: Some(Arc::new(Inner {
                at: None,
                cancelled: AtomicBool::new(false),
                polls: AtomicU64::new(0),
                tripped: AtomicBool::new(false),
            })),
        }
    }

    /// Trip the token (all clones observe it). No-op on unbounded tokens.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Relaxed);
        }
    }

    /// Whether this token can ever expire.
    pub fn is_unbounded(&self) -> bool {
        self.inner.is_none()
    }

    /// Whether the budget has elapsed or the token was cancelled.
    pub fn expired(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => {
                inner.polls.fetch_add(1, Ordering::Relaxed);
                metrics::DEADLINE_POLLS.inc();
                let expired = inner.cancelled.load(Ordering::Relaxed)
                    || inner.at.is_some_and(|at| Instant::now() >= at);
                if expired && !inner.tripped.swap(true, Ordering::Relaxed) {
                    metrics::DEADLINE_EXPIRATIONS.inc();
                }
                expired
            }
        }
    }

    /// How many wall-clock checks this token has absorbed, summed over
    /// all clones (0 for unbounded tokens). Campaign timeout diagnostics
    /// report this so a `timed_out` cell shows how responsive the
    /// cooperative polling actually was.
    pub fn polls(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.polls.load(Ordering::Relaxed))
    }

    /// Strided poll for hot loops: checks [`Deadline::expired`] only when
    /// `counter & mask == 0` (and the token is bounded at all).
    #[inline(always)]
    pub fn poll(&self, counter: u64, mask: u64) -> bool {
        self.inner.is_some() && counter & mask == 0 && self.expired()
    }

    /// [`Deadline::poll`] at the standard [`CHECK_INTERVAL`] stride —
    /// the granularity of the exhaustive-enumeration loops.
    #[inline(always)]
    pub fn should_stop(&self, counter: u64) -> bool {
        self.poll(counter, CHECK_INTERVAL - 1)
    }
}

/// Marker error: a deadline-aware operation stopped before completing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeadlineExpired;

impl std::fmt::Display for DeadlineExpired {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "the operation's wall budget expired before it completed")
    }
}

impl std::error::Error for DeadlineExpired {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_expires_and_polls_false() {
        let d = Deadline::none();
        assert!(d.is_unbounded());
        assert!(!d.expired());
        for counter in 0..3 * CHECK_INTERVAL {
            assert!(!d.should_stop(counter));
        }
        d.cancel(); // no-op
        assert!(!d.expired());
        assert_eq!(d.polls(), 0);
    }

    #[test]
    fn zero_budget_is_immediately_expired() {
        let d = Deadline::after(Duration::ZERO);
        assert!(!d.is_unbounded());
        assert!(d.expired());
        // The strided poll only fires on counter multiples of the mask.
        assert!(d.should_stop(0));
        assert!(!d.should_stop(1));
        assert!(d.should_stop(CHECK_INTERVAL));
        // Each check that got past the stride mask counted as a poll,
        // shared across clones of the token.
        assert_eq!(d.polls(), 3);
        assert_eq!(d.clone().polls(), 3);
    }

    #[test]
    fn manual_tokens_share_cancellation_across_clones() {
        let d = Deadline::manual();
        let clone = d.clone();
        assert!(!clone.expired());
        d.cancel();
        assert!(clone.expired());
        assert!(clone.should_stop(0));
    }

    #[test]
    fn generous_budget_does_not_expire_instantly() {
        let d = Deadline::after(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(!d.should_stop(0));
    }
}
