//! Offline drop-in subset of `proptest`.
//!
//! The build environment has no registry access, so the slice of proptest
//! this workspace's property tests use is reimplemented here behind the
//! same paths: the [`proptest!`] macro (with `#![proptest_config(..)]`
//! headers and `arg in strategy` bindings), [`prop_assert!`] /
//! [`prop_assert_eq!`] / [`prop_assume!`], `Strategy::prop_map`, integer
//! range and tuple strategies, `any::<T>()`, and
//! `prop::collection::vec`.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports its inputs (via the
//!   panic message of the assertion that fired) but is not minimized;
//! * **derived seeding** — each test derives a fixed seed from its own
//!   name, so runs are deterministic rather than OS-entropy seeded.
//!
//! Swap this path dependency for the real crate once a registry is
//! reachable; call sites need no changes.

#[doc(hidden)]
pub use rand as __rand;

pub mod test_runner {
    /// Run configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 32 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case's assumptions were not met; it is retried, not failed.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail<S: Into<String>>(msg: S) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection (assumption not met) with the given message.
        pub fn reject<S: Into<String>>(msg: S) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// The result type of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// A value generator. Unlike real proptest there is no shrinking
    /// tree; a strategy just produces values.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { base: self, f }
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (self.f)(self.base.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::{RngCore, RngExt};
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Draws a uniform value of the type.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.random_bool(0.5)
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut StdRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut StdRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut StdRng) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut StdRng) -> u8 {
            rng.next_u64() as u8
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// A `Vec` of `size.start..size.end` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.random_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace alias mirroring real proptest's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Derives a per-test seed from the test's name (FNV-1a), so each test
/// explores its own deterministic stream.
#[doc(hidden)]
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Declares property tests: an optional `#![proptest_config(..)]` header
/// followed by `#[test] fn name(arg in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        #[allow(unreachable_code)]
        fn $name() {
            let __config = $cfg;
            let mut __rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                $crate::seed_for(stringify!($name)),
            );
            let mut __passed: u32 = 0;
            let mut __rejected: u32 = 0;
            while __passed < __config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome = (|| -> $crate::test_runner::TestCaseResult {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match __outcome {
                    ::core::result::Result::Ok(()) => __passed += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(__why)) => {
                        __rejected += 1;
                        assert!(
                            __rejected <= __config.cases.saturating_mul(20),
                            "proptest '{}': too many rejected cases ({__why})",
                            stringify!($name),
                        );
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(__why)) => {
                        panic!(
                            "proptest '{}' failed after {} passing case(s): {}",
                            stringify!($name),
                            __passed,
                            __why,
                        );
                    }
                }
            }
        }
    )*};
}

/// Asserts inside a proptest body, failing the case (not the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), __l, __r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?}): {}",
            stringify!($left), stringify!($right), __l, __r, format!($($fmt)+),
        );
    }};
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left),
            stringify!($right),
            __l,
        );
    }};
}

/// Skips the current case (retried with fresh inputs) when `cond` fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in 0u64..5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 5, "y = {} out of range", y);
        }

        #[test]
        fn tuples_and_map(pair in (1usize..4, 1usize..4).prop_map(|(a, b)| a * b)) {
            prop_assert!((1..16).contains(&pair));
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(any::<bool>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn assume_retries(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn early_ok_return_works(x in 0usize..10) {
            if x < 10 {
                return Ok(());
            }
            prop_assert!(false, "unreachable");
        }
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failures_panic_with_context() {
        proptest! {
            fn inner(x in 0usize..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
