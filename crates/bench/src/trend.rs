//! Trend history: fold successive conformance-campaign artifacts into an
//! append-only `TREND.json` series (the `trend` bin).
//!
//! CI produces two artifacts per campaign run: the deterministic
//! `report.json` (verdicts and per-cell honest proof sizes) and the
//! timed `BENCH_conformance.json` (per-cell wall times). Each is a
//! snapshot of one commit; the questions the ROADMAP cares about —
//! *did a scheme's proof sizes creep up? is the campaign getting
//! slower?* — need the series across commits. [`TrendHistory`] is that
//! series: one [`TrendEntry`] per `(commit, seed)`, carrying the summary
//! counts plus the per-cell proof sizes and wall times, appended run
//! after run (re-running a commit replaces its entry instead of
//! duplicating it, so the fold is idempotent).
//!
//! The history is plain JSON in the same hand-rolled style as the other
//! artifacts, parseable by [`lcp_core::json`] — including by this module
//! itself, which is how it folds.

use lcp_core::json::{escape as json_str, Json};
use std::fmt::Write as _;

/// One cell's measurements in one run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrendCell {
    /// Registry id of the scheme.
    pub scheme: String,
    /// Graph family name.
    pub family: String,
    /// Actual instance size.
    pub n: usize,
    /// `yes` / `no`.
    pub polarity: String,
    /// Which check ran.
    pub check: String,
    /// Honest proof size in bits per node (yes cells).
    pub proof_bits: Option<usize>,
    /// Cell wall time, when a bench artifact supplied one.
    pub wall_ms: Option<u128>,
}

impl TrendCell {
    /// The identity cells are matched on across runs and artifacts.
    pub fn key(&self) -> (String, String, usize, String, String) {
        (
            self.scheme.clone(),
            self.family.clone(),
            self.n,
            self.polarity.clone(),
            self.check.clone(),
        )
    }
}

/// One campaign run in the history, keyed by `(commit, seed)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrendEntry {
    /// Commit the artifacts came from.
    pub commit: String,
    /// Campaign seed.
    pub seed: u64,
    /// Profile name.
    pub profile: String,
    /// Total cells.
    pub cells: usize,
    /// Passed cells.
    pub passed: usize,
    /// Failed cells.
    pub failed: usize,
    /// Skipped (inapplicable) cells.
    pub skipped: usize,
    /// Total campaign wall time summed over the bench artifacts, when
    /// any were supplied.
    pub wall_ms: Option<u128>,
    /// Per-cell measurements (non-skipped cells, matrix order).
    pub series: Vec<TrendCell>,
}

/// The whole append-only history.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TrendHistory {
    /// Entries in fold order (oldest first).
    pub entries: Vec<TrendEntry>,
}

fn opt_num<T: std::fmt::Display>(v: &Option<T>) -> String {
    match v {
        Some(x) => x.to_string(),
        None => "null".into(),
    }
}

fn missing(what: &str) -> String {
    format!("missing or mistyped field \"{what}\"")
}

impl TrendHistory {
    /// An empty history (the first fold starts here).
    pub fn new() -> Self {
        TrendHistory::default()
    }

    /// Parses a previously written `TREND.json`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn parse(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        let entries = doc
            .get("entries")
            .and_then(Json::as_array)
            .ok_or_else(|| missing("entries"))?;
        let entries = entries
            .iter()
            .map(|e| {
                let series = e
                    .get("series")
                    .and_then(Json::as_array)
                    .ok_or_else(|| missing("series"))?
                    .iter()
                    .map(|c| {
                        Ok(TrendCell {
                            scheme: c
                                .get("scheme")
                                .and_then(Json::as_str)
                                .ok_or_else(|| missing("scheme"))?
                                .into(),
                            family: c
                                .get("family")
                                .and_then(Json::as_str)
                                .ok_or_else(|| missing("family"))?
                                .into(),
                            n: c.get("n")
                                .and_then(Json::as_usize)
                                .ok_or_else(|| missing("n"))?,
                            polarity: c
                                .get("polarity")
                                .and_then(Json::as_str)
                                .ok_or_else(|| missing("polarity"))?
                                .into(),
                            check: c
                                .get("check")
                                .and_then(Json::as_str)
                                .ok_or_else(|| missing("check"))?
                                .into(),
                            proof_bits: c.get("proof_bits").and_then(Json::as_usize),
                            wall_ms: c.get("wall_ms").and_then(Json::as_u128),
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(TrendEntry {
                    commit: e
                        .get("commit")
                        .and_then(Json::as_str)
                        .ok_or_else(|| missing("commit"))?
                        .into(),
                    seed: e
                        .get("seed")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| missing("seed"))?,
                    profile: e
                        .get("profile")
                        .and_then(Json::as_str)
                        .ok_or_else(|| missing("profile"))?
                        .into(),
                    cells: e
                        .get("cells")
                        .and_then(Json::as_usize)
                        .ok_or_else(|| missing("cells"))?,
                    passed: e
                        .get("passed")
                        .and_then(Json::as_usize)
                        .ok_or_else(|| missing("passed"))?,
                    failed: e
                        .get("failed")
                        .and_then(Json::as_usize)
                        .ok_or_else(|| missing("failed"))?,
                    skipped: e
                        .get("skipped")
                        .and_then(Json::as_usize)
                        .ok_or_else(|| missing("skipped"))?,
                    wall_ms: e.get("wall_ms").and_then(Json::as_u128),
                    series,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(TrendHistory { entries })
    }

    /// Folds `entry` into the history: replaces the existing entry for
    /// the same `(commit, seed)` if one exists (idempotent re-runs),
    /// else appends. Returns `true` when an entry was replaced.
    pub fn upsert(&mut self, entry: TrendEntry) -> bool {
        if let Some(existing) = self
            .entries
            .iter_mut()
            .find(|e| e.commit == entry.commit && e.seed == entry.seed)
        {
            *existing = entry;
            true
        } else {
            self.entries.push(entry);
            false
        }
    }

    /// The entry chronologically before the given `(commit, seed)` —
    /// the baseline a run is compared against. For a new `(commit,
    /// seed)` that is the newest entry; for a re-fold of an existing one
    /// it is the entry folded just before it (so backfilling an old run
    /// never diffs forwards against a newer entry with the direction
    /// inverted).
    pub fn previous(&self, commit: &str, seed: u64) -> Option<&TrendEntry> {
        match self
            .entries
            .iter()
            .position(|e| e.commit == commit && e.seed == seed)
        {
            Some(0) => None,
            Some(pos) => self.entries.get(pos - 1),
            None => self.entries.last(),
        }
    }

    /// Serializes the history (deterministic given the entries).
    pub fn to_json(&self) -> String {
        let mut w = String::with_capacity(1 << 16);
        w.push_str("{\n");
        let _ = writeln!(w, "  \"trend\": \"conformance-campaign\",");
        let _ = writeln!(w, "  \"version\": 1,");
        w.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            w.push_str("    {\n");
            let _ = writeln!(w, "      \"commit\": {},", json_str(&e.commit));
            let _ = writeln!(w, "      \"seed\": {},", e.seed);
            let _ = writeln!(w, "      \"profile\": {},", json_str(&e.profile));
            let _ = writeln!(
                w,
                "      \"cells\": {}, \"passed\": {}, \"failed\": {}, \"skipped\": {},",
                e.cells, e.passed, e.failed, e.skipped
            );
            let _ = writeln!(w, "      \"wall_ms\": {},", opt_num(&e.wall_ms));
            w.push_str("      \"series\": [\n");
            for (j, c) in e.series.iter().enumerate() {
                let _ = write!(
                    w,
                    "        {{ \"scheme\": {}, \"family\": {}, \"n\": {}, \"polarity\": {}, \
                     \"check\": {}, \"proof_bits\": {}, \"wall_ms\": {} }}",
                    json_str(&c.scheme),
                    json_str(&c.family),
                    c.n,
                    json_str(&c.polarity),
                    json_str(&c.check),
                    opt_num(&c.proof_bits),
                    opt_num(&c.wall_ms),
                );
                w.push_str(if j + 1 < e.series.len() { ",\n" } else { "\n" });
            }
            w.push_str("      ]\n");
            w.push_str("    }");
            w.push_str(if i + 1 < self.entries.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        w.push_str("  ]\n}\n");
        w
    }
}

/// Builds one history entry from a campaign `report.json` plus any
/// number of `BENCH_conformance.json` artifacts (one per shard in
/// sharded runs; their wall times are matched to cells by identity and
/// summed into the entry total).
///
/// # Errors
///
/// Returns a description of the first malformed field of either
/// artifact.
pub fn entry_from_artifacts(
    commit: &str,
    report_json: &str,
    bench_jsons: &[String],
) -> Result<TrendEntry, String> {
    let report = Json::parse(report_json).map_err(|e| format!("report: {e}"))?;
    let summary = report.get("summary").ok_or_else(|| missing("summary"))?;
    let mut entry = TrendEntry {
        commit: commit.to_string(),
        seed: report
            .get("seed")
            .and_then(Json::as_u64)
            .ok_or_else(|| missing("seed"))?,
        profile: report
            .get("profile")
            .and_then(Json::as_str)
            .ok_or_else(|| missing("profile"))?
            .into(),
        cells: summary
            .get("cells")
            .and_then(Json::as_usize)
            .ok_or_else(|| missing("summary.cells"))?,
        passed: summary
            .get("passed")
            .and_then(Json::as_usize)
            .ok_or_else(|| missing("summary.passed"))?,
        failed: summary
            .get("failed")
            .and_then(Json::as_usize)
            .ok_or_else(|| missing("summary.failed"))?,
        skipped: summary
            .get("skipped")
            .and_then(Json::as_usize)
            .ok_or_else(|| missing("summary.skipped"))?,
        wall_ms: None,
        series: Vec::new(),
    };

    for scheme in report
        .get("schemes")
        .and_then(Json::as_array)
        .ok_or_else(|| missing("schemes"))?
    {
        let id = scheme
            .get("id")
            .and_then(Json::as_str)
            .ok_or_else(|| missing("schemes[].id"))?;
        for cell in scheme
            .get("cells")
            .and_then(Json::as_array)
            .ok_or_else(|| missing("schemes[].cells"))?
        {
            if cell.get("status").and_then(Json::as_str) == Some("skip") {
                continue; // skipped cells measure nothing
            }
            entry.series.push(TrendCell {
                scheme: id.to_string(),
                family: cell
                    .get("family")
                    .and_then(Json::as_str)
                    .ok_or_else(|| missing("cells[].family"))?
                    .into(),
                n: cell
                    .get("n")
                    .and_then(Json::as_usize)
                    .ok_or_else(|| missing("cells[].n"))?,
                polarity: cell
                    .get("polarity")
                    .and_then(Json::as_str)
                    .ok_or_else(|| missing("cells[].polarity"))?
                    .into(),
                check: cell
                    .get("check")
                    .and_then(Json::as_str)
                    .ok_or_else(|| missing("cells[].check"))?
                    .into(),
                proof_bits: cell.get("proof_bits").and_then(Json::as_usize),
                wall_ms: None,
            });
        }
    }

    // Fold wall times in from the bench artifacts. Cells are matched by
    // identity (scheme, family, n, polarity, check) with per-key FIFO
    // order — exact for single-process runs; across shards, cells that
    // collapse onto the same identity may swap statistically equivalent
    // wall times.
    let mut walls: std::collections::BTreeMap<_, std::collections::VecDeque<u128>> =
        std::collections::BTreeMap::new();
    let mut total: Option<u128> = None;
    for (i, text) in bench_jsons.iter().enumerate() {
        let bench = Json::parse(text).map_err(|e| format!("bench #{i}: {e}"))?;
        if let Some(ms) = bench.get("wall_ms").and_then(Json::as_u128) {
            total = Some(total.unwrap_or(0) + ms);
        }
        for cell in bench
            .get("per_cell")
            .and_then(Json::as_array)
            .ok_or_else(|| missing("per_cell"))?
        {
            let key = (
                cell.get("scheme")
                    .and_then(Json::as_str)
                    .ok_or_else(|| missing("per_cell[].scheme"))?
                    .to_string(),
                cell.get("family")
                    .and_then(Json::as_str)
                    .ok_or_else(|| missing("per_cell[].family"))?
                    .to_string(),
                cell.get("n")
                    .and_then(Json::as_usize)
                    .ok_or_else(|| missing("per_cell[].n"))?,
                cell.get("polarity")
                    .and_then(Json::as_str)
                    .ok_or_else(|| missing("per_cell[].polarity"))?
                    .to_string(),
                cell.get("check")
                    .and_then(Json::as_str)
                    .ok_or_else(|| missing("per_cell[].check"))?
                    .to_string(),
            );
            if let Some(ms) = cell.get("wall_ms").and_then(Json::as_u128) {
                walls.entry(key).or_default().push_back(ms);
            }
        }
    }
    entry.wall_ms = total;
    for cell in &mut entry.series {
        if let Some(q) = walls.get_mut(&cell.key()) {
            cell.wall_ms = q.pop_front();
        }
    }
    Ok(entry)
}

/// Human-readable per-cell deltas between two runs: proof-size changes
/// and pass/fail flips, for the summary the `trend` bin prints.
pub fn diff_entries(prev: &TrendEntry, next: &TrendEntry) -> Vec<String> {
    let mut lines = Vec::new();
    if (prev.passed, prev.failed) != (next.passed, next.failed) {
        lines.push(format!(
            "summary: {}/{} passed/failed (was {}/{})",
            next.passed, next.failed, prev.passed, prev.failed
        ));
    }
    let index: std::collections::BTreeMap<_, &TrendCell> =
        prev.series.iter().map(|c| (c.key(), c)).collect();
    for cell in &next.series {
        let Some(old) = index.get(&cell.key()) else {
            continue; // new cell (registry growth): nothing to compare
        };
        if old.proof_bits != cell.proof_bits {
            lines.push(format!(
                "{} on {}/n={}/{}: proof bits {} -> {}",
                cell.scheme,
                cell.family,
                cell.n,
                cell.polarity,
                opt_num(&old.proof_bits),
                opt_num(&cell.proof_bits),
            ));
        }
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    const REPORT: &str = r#"{
  "version": 1,
  "seed": 7,
  "profile": "smoke",
  "parallel": true,
  "summary": { "cells": 3, "passed": 2, "failed": 0, "skipped": 1 },
  "schemes": [
    { "id": "bipartite",
      "cells": [
        { "coord": 0, "family": "cycle", "requested_n": 8, "n": 8, "polarity": "yes",
          "holds": true, "status": "pass", "check": "completeness", "proof_bits": 1,
          "witness_node": null, "tamper": null, "detail": "ok" },
        { "coord": 1, "family": "cycle", "requested_n": 8, "n": 9, "polarity": "no",
          "holds": false, "status": "pass", "check": "soundness-exhaustive", "proof_bits": null,
          "witness_node": null, "tamper": null, "detail": "ok" },
        { "coord": 2, "family": "tree", "requested_n": 8, "n": 0, "polarity": "no",
          "holds": false, "status": "skip", "check": "inapplicable", "proof_bits": null,
          "witness_node": null, "tamper": null, "detail": "n/a" }
      ] }
  ]
}"#;

    const BENCH: &str = r#"{
  "bench": "conformance-campaign",
  "seed": 7,
  "wall_ms": 41,
  "per_cell": [
    { "scheme": "bipartite", "family": "cycle", "n": 8, "polarity": "yes",
      "check": "completeness", "proof_bits": 1, "wall_ms": 3 },
    { "scheme": "bipartite", "family": "cycle", "n": 9, "polarity": "no",
      "check": "soundness-exhaustive", "proof_bits": null, "wall_ms": 17 }
  ]
}"#;

    #[test]
    fn folds_report_and_bench_into_an_entry() {
        let e = entry_from_artifacts("abc1234", REPORT, &[BENCH.to_string()]).unwrap();
        assert_eq!((e.cells, e.passed, e.failed, e.skipped), (3, 2, 0, 1));
        assert_eq!(e.wall_ms, Some(41));
        // Skipped cells are not in the series; measured ones carry both
        // proof bits and wall times.
        assert_eq!(e.series.len(), 2);
        assert_eq!(e.series[0].proof_bits, Some(1));
        assert_eq!(e.series[0].wall_ms, Some(3));
        assert_eq!(e.series[1].proof_bits, None);
        assert_eq!(e.series[1].wall_ms, Some(17));
    }

    #[test]
    fn history_round_trips_and_upserts() {
        let mut history = TrendHistory::new();
        let a = entry_from_artifacts("aaaa", REPORT, &[]).unwrap();
        assert!(!history.upsert(a.clone()));
        let mut b = a.clone();
        b.commit = "bbbb".into();
        assert!(!history.upsert(b));
        // Same (commit, seed) replaces instead of duplicating.
        assert!(history.upsert(a));
        assert_eq!(history.entries.len(), 2);

        let reparsed = TrendHistory::parse(&history.to_json()).unwrap();
        assert_eq!(reparsed, history);
        // A new (commit, seed) compares against the newest entry...
        assert_eq!(
            history.previous("cccc", 7).map(|e| e.commit.as_str()),
            Some("bbbb")
        );
        // ...a re-fold compares against the entry folded just before
        // it, never forwards...
        assert_eq!(
            history.previous("bbbb", 7).map(|e| e.commit.as_str()),
            Some("aaaa")
        );
        // ...and the oldest entry has no baseline.
        assert_eq!(history.previous("aaaa", 7).map(|e| e.commit.as_str()), None);
    }

    #[test]
    fn diff_reports_proof_size_drift() {
        let old = entry_from_artifacts("aaaa", REPORT, &[]).unwrap();
        let mut new = entry_from_artifacts("bbbb", REPORT, &[]).unwrap();
        new.series[0].proof_bits = Some(4);
        let lines = diff_entries(&old, &new);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("proof bits 1 -> 4"), "{lines:?}");
        assert!(diff_entries(&old, &old).is_empty());
    }
}
