//! End-to-end attack runs: the §5.3 / §6.1 / §6.2 / §6.3 constructions
//! must fool the undersized strawmen and must *fail* against the paper's
//! honest schemes at their designed proof sizes.

use lcp_core::{Instance, Scheme};
use lcp_graph::Graph;
use lcp_lower_bounds::fooling::{fooling_attack, FoolingOutcome, GadgetLayout};
use lcp_lower_bounds::gluing::{glue_cycles, GluingAttack, GluingOutcome};
use lcp_lower_bounds::join_collision::{join_collision_attack, rooted_tree_family, JoinOutcome};
use lcp_lower_bounds::strawman::{ParityLeader, TruncatedUniversal};
use lcp_schemes::cycles::OddCycle;
use lcp_schemes::leader::LeaderElection;

/// Mark node index 0 (identifier `a`) as the leader of a base cycle.
fn leader_at_a(g: Graph) -> Instance<bool> {
    let labels = (0..g.n()).map(|v| v == 0).collect();
    Instance::with_node_data(g, labels)
}

#[test]
fn gluing_fools_the_constant_size_leader_scheme() {
    // §5.3 with k = 2: two single-leader cycles glue into a two-leader
    // cycle that the 1-bit parity scheme accepts everywhere.
    let attack = GluingAttack::new(11, 2);
    let outcome = glue_cycles(&ParityLeader, &attack, leader_at_a, None);
    match outcome {
        GluingOutcome::Fooled(ce) => {
            assert_eq!(ce.n(), 22, "kn-cycle");
            assert!(ce.verdict.accepted());
            // The forged instance genuinely has two leaders.
            let leaders = ce.instance.node_labels().iter().filter(|&&l| l).count();
            assert_eq!(leaders, 2);
        }
        other => panic!("expected Fooled, got {other:?}"),
    }
}

#[test]
fn gluing_fails_against_the_log_n_leader_scheme() {
    // The honest Θ(log n) scheme puts root identities and distances in
    // the window, so colours never collide at this scale.
    let attack = GluingAttack::new(11, 2);
    let outcome = glue_cycles(&LeaderElection, &attack, leader_at_a, None);
    match outcome {
        GluingOutcome::NoMonochromaticCycle { colors, pairs } => {
            assert_eq!(pairs, 11 * 11);
            assert!(colors > 1, "windows must differ");
        }
        GluingOutcome::Fooled(_) => panic!("Θ(log n) scheme must not be fooled at n = 11"),
        other => panic!("unexpected outcome {other:?}"),
    }
}

#[test]
fn gluing_fails_against_the_odd_cycle_counting_scheme() {
    let attack = GluingAttack::new(11, 2);
    let outcome = glue_cycles(&OddCycle, &attack, Instance::unlabeled, None);
    assert!(
        matches!(outcome, GluingOutcome::NoMonochromaticCycle { .. }),
        "counting certificates embed Θ(log n) bits near the junction: {outcome:?}"
    );
}

#[test]
fn join_collision_fools_truncated_universal_on_trees() {
    // §6.2: rooted trees on k = 6 nodes (20 of them); a 64-bit budget is
    // far below Θ(n) once identifiers are γ-coded, so windows collide.
    let scheme = TruncatedUniversal::new("fixpoint-free", 48, |g: &Graph| {
        lcp_graph::iso::fixpoint_free_automorphism(g).is_some()
    });
    let family = rooted_tree_family(6, 1000).unwrap();
    let outcome = join_collision_attack(&scheme, &family);
    match outcome {
        JoinOutcome::Fooled(ce) => {
            assert_eq!(ce.n(), 18, "3k nodes");
            // The hybrid genuinely lacks a fixpoint-free symmetry.
            assert!(lcp_graph::iso::fixpoint_free_automorphism(ce.instance.graph()).is_none());
        }
        other => panic!("expected Fooled, got {other:?}"),
    }
}

#[test]
fn join_collision_fails_against_the_full_tree_encoding() {
    // The honest Θ(n) scheme writes the whole shape into every node, so
    // the path window distinguishes all 20 trees.
    let scheme = lcp_schemes::tree_universal::tree_fixpoint_free();
    let family = rooted_tree_family(6, 1000).unwrap();
    let outcome = join_collision_attack(&scheme, &family);
    match outcome {
        JoinOutcome::NoCollision {
            candidates,
            distinct_windows,
        } => {
            assert_eq!(candidates, 20);
            assert_eq!(distinct_windows, 20);
        }
        other => panic!("expected NoCollision, got {other:?}"),
    }
}

#[test]
fn join_collision_fools_truncated_universal_on_asymmetric_graphs() {
    // §6.1 with sampled 7-node asymmetric halves and a tight budget.
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let family = lcp_lower_bounds::join_collision::asymmetric_family(7, 12, &mut rng).unwrap();
    assert!(family.len() >= 4);
    let scheme = TruncatedUniversal::new("symmetric", 48, lcp_graph::iso::is_symmetric);
    let outcome = join_collision_attack(&scheme, &family);
    match outcome {
        JoinOutcome::Fooled(ce) => {
            assert!(lcp_graph::iso::nontrivial_automorphism(ce.instance.graph()).is_none());
        }
        other => panic!("expected Fooled, got {other:?}"),
    }
}
use rand::SeedableRng;

#[test]
fn fooling_attack_breaks_truncated_non_3_colorability() {
    // §6.3 at k = 1: 16 sets A; a sub-encoding budget collides on the
    // wire window and the spliced hybrid is 3-colourable yet accepted.
    let scheme = TruncatedUniversal::new("chromatic>3", 96, |g: &Graph| {
        !lcp_graph::coloring::is_k_colorable(g, 3)
    });
    let layout = GadgetLayout::for_radius(1, scheme.radius());
    let outcome = fooling_attack(&scheme, &layout, 16, 11);
    match outcome {
        FoolingOutcome::Fooled(ce) => {
            assert!(lcp_graph::coloring::is_k_colorable(ce.instance.graph(), 3));
        }
        other => panic!("expected Fooled, got {other:?}"),
    }
}

#[test]
fn fooling_attack_fails_against_the_full_universal_scheme() {
    let scheme = lcp_schemes::universal::non_three_colorable();
    let layout = GadgetLayout::for_radius(1, scheme.radius());
    let outcome = fooling_attack(&scheme, &layout, 6, 13);
    assert!(
        matches!(outcome, FoolingOutcome::NoCollision { .. }),
        "O(n²) encodings must keep windows distinct: {outcome:?}"
    );
}
