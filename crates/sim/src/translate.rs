//! The §7.1 model translations, as scheme combinators.
//!
//! Model `M1` has unique identifiers; model `M2` has only a port
//! numbering and a designated leader. §7.1 proves that `LogLCP` is the
//! *same* class in both models by translating proof labelling schemes
//! back and forth with `O(log n)` overhead:
//!
//! * `M2 → M1` ([`IdentifiedFromAnonymous`]): append a spanning-tree
//!   certificate that designates a leader; the `M1` verifier checks the
//!   tree with identifiers, then strips them and runs the anonymous
//!   verifier on a [`PortView`].
//! * `M1 → M2` ([`AnonymousFromIdentified`]): *generate identifiers
//!   inside the proof* — DFS discovery/finish intervals over a rooted
//!   spanning tree, locally checkable for global uniqueness
//!   ([`crate::port::verify_dfs_intervals`]'s conditions, re-checked here
//!   on anonymous views) — then simulate the identifier-based verifier on
//!   the synthesized identifiers.

use crate::port::PortView;
use lcp_core::{BitReader, BitString, BitWriter, EdgeMap, Instance, Proof, Scheme, Verdict, View};
use lcp_graph::NodeId;

/// A proof labelling scheme in model `M2`: anonymous network with a port
/// numbering and one designated leader.
///
/// The verifier receives a [`PortView`] whose node data is
/// `(N, is_leader)` — identifiers are unreachable by construction.
/// The prover may inspect the full instance (provers are omniscient in
/// both models) and must succeed for *any* choice of leader on a
/// yes-instance (the leader is part of the model, not of the property).
pub trait AnonymousScheme {
    /// Per-node input labels.
    type Node: Clone;
    /// Per-edge input labels.
    type Edge: Clone;

    /// Human-readable name.
    fn name(&self) -> String;

    /// Local horizon.
    fn radius(&self) -> usize;

    /// Ground truth (a graph property — leader-independent).
    fn holds(&self, inst: &Instance<Self::Node, Self::Edge>) -> bool;

    /// Prover, given the designated leader.
    fn prove(&self, inst: &Instance<Self::Node, Self::Edge>, leader: usize) -> Option<Proof>;

    /// Anonymous verifier.
    fn verify(&self, view: &PortView<(Self::Node, bool), Self::Edge>) -> bool;
}

/// Evaluates an anonymous scheme at every node of an instance with a
/// designated leader — the `M2` counterpart of `lcp_core::evaluate`.
pub fn evaluate_anonymous<S: AnonymousScheme>(
    scheme: &S,
    inst: &Instance<S::Node, S::Edge>,
    leader: usize,
    proof: &Proof,
) -> Verdict {
    let flagged = flag_leader(inst, leader);
    let outputs = flagged
        .graph()
        .nodes()
        .map(|v| {
            let view = View::extract(&flagged, proof, v, scheme.radius());
            scheme.verify(&PortView::from_view(&view))
        })
        .collect();
    Verdict::from_outputs(outputs)
}

fn flag_leader<N: Clone, E: Clone>(inst: &Instance<N, E>, leader: usize) -> Instance<(N, bool), E> {
    let labels: Vec<(N, bool)> = inst
        .graph()
        .nodes()
        .map(|v| (inst.node_label(v).clone(), v == leader))
        .collect();
    Instance::with_data(inst.graph().clone(), labels, inst.edge_labels().clone())
}

// ---------------------------------------------------------------------
// Direction M2 → M1
// ---------------------------------------------------------------------

/// Wraps an `M2` scheme into an `M1` scheme (§7.1, first direction): the
/// proof gains a spanning-tree certificate whose root plays the leader.
pub struct IdentifiedFromAnonymous<S> {
    inner: S,
}

impl<S: AnonymousScheme> IdentifiedFromAnonymous<S> {
    /// Wraps `inner`.
    pub fn new(inner: S) -> Self {
        IdentifiedFromAnonymous { inner }
    }
}

impl<S> Scheme for IdentifiedFromAnonymous<S>
where
    S: AnonymousScheme,
{
    type Node = S::Node;
    type Edge = S::Edge;

    fn name(&self) -> String {
        format!("m1[{}]", self.inner.name())
    }

    fn radius(&self) -> usize {
        self.inner.radius().max(1)
    }

    fn holds(&self, inst: &Instance<S::Node, S::Edge>) -> bool {
        lcp_graph::traversal::is_connected(inst.graph()) && inst.n() > 0 && self.inner.holds(inst)
    }

    fn prove(&self, inst: &Instance<S::Node, S::Edge>) -> Option<Proof> {
        if !lcp_graph::traversal::is_connected(inst.graph()) || inst.n() == 0 {
            return None;
        }
        // Pick the smallest-identifier node as the leader.
        let g = inst.graph();
        let leader = g.nodes().min_by_key(|&v| g.id(v)).expect("nonempty");
        let inner = self.inner.prove(inst, leader)?;
        let tree = lcp_graph::spanning::bfs_spanning_tree(g, leader);
        let certs = lcp_core::components::TreeCert::prove(g, &tree);
        Some(Proof::from_fn(g.n(), |v| {
            let mut w = BitWriter::new();
            certs[v].encode(&mut w);
            w.write_gamma(inner.get(v).len() as u64);
            for b in inner.get(v).iter() {
                w.write_bit(b);
            }
            w.finish()
        }))
    }

    fn verify(&self, view: &View<S::Node, S::Edge>) -> bool {
        use lcp_core::components::TreeCert;
        let decode = |u: usize| -> Option<(TreeCert, BitString)> {
            let mut r = BitReader::new(view.proof(u));
            let cert = TreeCert::decode(&mut r).ok()?;
            let len = r.read_gamma().ok()? as usize;
            let mut inner = BitString::new();
            for _ in 0..len {
                inner.push(r.read_bit().ok()?);
            }
            r.is_exhausted().then_some((cert, inner))
        };
        if !TreeCert::verify_at_center(view, |u| decode(u).map(|(c, _)| c)) {
            return false;
        }
        // Rebuild the anonymous view: leader flag = (dist == 0), proofs =
        // the inner payload, identifiers erased.
        let restricted = view.restrict(self.inner.radius().min(view.radius()));
        let n = restricted.n();
        let mut labels: Vec<(S::Node, bool)> = Vec::with_capacity(n);
        let mut proofs: Vec<BitString> = Vec::with_capacity(n);
        for u in restricted.nodes() {
            let Some((cert, inner)) = decode(u) else {
                return false;
            };
            labels.push((restricted.node_label(u).clone(), cert.dist == 0));
            proofs.push(inner);
        }
        let mut edge_data: EdgeMap<S::Edge> = EdgeMap::new();
        for (u, w) in restricted.edges() {
            if let Some(l) = restricted.edge_label(u, w) {
                edge_data.insert((u, w), l.clone());
            }
        }
        let anon_view = View::from_parts(
            restricted.center(),
            restricted.radius(),
            restricted.ids().to_vec(),
            restricted
                .nodes()
                .map(|u| restricted.neighbors(u).to_vec())
                .collect(),
            restricted.nodes().map(|u| restricted.dist(u)).collect(),
            labels,
            edge_data,
            proofs,
        );
        self.inner.verify(&PortView::from_view(&anon_view))
    }
}

// ---------------------------------------------------------------------
// Direction M1 → M2
// ---------------------------------------------------------------------

/// Wraps an `M1` scheme into an `M2` scheme (§7.1, second direction):
/// the proof carries DFS-interval identifiers, checked for global
/// uniqueness by local conditions, plus the inner `M1` proof computed on
/// the graph *relabelled with those identifiers*.
///
/// Per-node proof layout: `γ(x) γ(y) γ(parent_port) γ(len) inner_bits`,
/// where `parent_port = 0` marks the root.
///
/// The wrapped property must be closed under identifier re-assignment
/// (§2.2 requires that of every graph property anyway) — the inner
/// verifier runs on synthesized identifiers `id(v) = (x(v), y(v))`.
pub struct AnonymousFromIdentified<S> {
    inner: S,
}

impl<S: Scheme> AnonymousFromIdentified<S> {
    /// Wraps `inner`.
    pub fn new(inner: S) -> Self {
        AnonymousFromIdentified { inner }
    }
}

/// Packs a DFS interval into a synthesized identifier via the Cantor
/// pairing function: injective, and with `x, y ≤ 2n` the identifier stays
/// `O(n²)` — i.e. `O(log n)` bits, preserving the model's identifier-size
/// assumption and the translation's `O(log n)` overhead.
fn interval_id(x: u64, y: u64) -> NodeId {
    NodeId((x + y) * (x + y + 1) / 2 + y + 1)
}

#[derive(Clone, Debug)]
struct M2Cert {
    x: u64,
    y: u64,
    /// 1-based port of the tree parent; 0 at the root.
    parent_port: u64,
    inner: BitString,
}

fn decode_m2(proof: &BitString) -> Option<M2Cert> {
    let mut r = BitReader::new(proof);
    let x = r.read_gamma().ok()?;
    let y = r.read_gamma().ok()?;
    let parent_port = r.read_gamma().ok()?;
    let len = r.read_gamma().ok()? as usize;
    let mut inner = BitString::new();
    for _ in 0..len {
        inner.push(r.read_bit().ok()?);
    }
    (r.is_exhausted() && x >= 1 && x < y).then_some(M2Cert {
        x,
        y,
        parent_port,
        inner,
    })
}

impl<S> AnonymousScheme for AnonymousFromIdentified<S>
where
    S: Scheme,
    S::Node: Clone,
    S::Edge: Clone,
{
    type Node = S::Node;
    type Edge = S::Edge;

    fn name(&self) -> String {
        format!("m2[{}]", self.inner.name())
    }

    fn radius(&self) -> usize {
        // One extra hop: the DFS checks read *port indices* of the
        // centre's children, which are only meaningful when the
        // children's full neighbour lists are inside the view.
        self.inner.radius().max(1) + 1
    }

    fn holds(&self, inst: &Instance<S::Node, S::Edge>) -> bool {
        lcp_graph::traversal::is_connected(inst.graph()) && inst.n() > 0 && self.inner.holds(inst)
    }

    fn prove(&self, inst: &Instance<S::Node, S::Edge>, leader: usize) -> Option<Proof> {
        let g = inst.graph();
        if !lcp_graph::traversal::is_connected(g) || g.n() == 0 {
            return None;
        }
        let tree = lcp_graph::spanning::bfs_spanning_tree(g, leader);
        let labels = crate::port::dfs_interval_labels(g, &tree);
        // Relabel the graph with the synthesized identifiers and run the
        // inner prover there — that is the world the M2 verifier rebuilds.
        let relabeled = g
            .relabel(|id| {
                let v = g.index_of(id).expect("own id");
                interval_id(labels[v].0 as u64, labels[v].1 as u64)
            })
            .expect("DFS intervals are unique");
        let inner_inst = Instance::with_data(
            relabeled,
            inst.node_labels().to_vec(),
            inst.edge_labels().clone(),
        );
        let inner = self.inner.prove(&inner_inst)?;
        // Port of the parent: ports are identifier-ordered in the
        // *original* graph (the canonical M1→M2 port assignment).
        let pn = crate::port::PortNumbering::from_graph(g);
        Some(Proof::from_fn(g.n(), |v| {
            let mut w = BitWriter::new();
            w.write_gamma(labels[v].0 as u64);
            w.write_gamma(labels[v].1 as u64);
            let pp = tree
                .parent(v)
                .map(|p| pn.port_to(v, p).expect("parent is a neighbour") as u64)
                .unwrap_or(0);
            w.write_gamma(pp);
            w.write_gamma(inner.get(v).len() as u64);
            for b in inner.get(v).iter() {
                w.write_bit(b);
            }
            w.finish()
        }))
    }

    fn verify(&self, pv: &PortView<(S::Node, bool), S::Edge>) -> bool {
        let c = pv.center();
        let Some(mine) = decode_m2(pv.proof(c)) else {
            return false;
        };
        // Decode the certificates of every visible node.
        let mut certs: Vec<Option<M2Cert>> = Vec::with_capacity(pv.n());
        for u in 0..pv.n() {
            certs.push(decode_m2(pv.proof(u)));
        }
        let get = |u: usize| certs[u].as_ref();
        // --- Local DFS-interval conditions (cf. port::verify_dfs_intervals).
        let is_leader = pv.node_label(c).1;
        // Root ⇔ leader ⇔ parent_port = 0 ⇔ x = 1.
        if is_leader != (mine.parent_port == 0) || is_leader != (mine.x == 1) {
            return false;
        }
        // Parent must exist behind the claimed port.
        if mine.parent_port != 0 {
            let p = mine.parent_port as usize;
            if p > pv.neighbors(c).len() {
                return false;
            }
            let parent = pv.neighbors(c)[p - 1];
            let Some(pc) = get(parent) else {
                return false;
            };
            // My interval nests strictly inside my parent's.
            if !(pc.x < mine.x && mine.y < pc.y) {
                return false;
            }
        }
        // Children: neighbours whose parent port points back at me.
        let mut children: Vec<&M2Cert> = Vec::new();
        for (port_idx, &u) in pv.neighbors(c).iter().enumerate() {
            let _ = port_idx;
            let Some(cu) = get(u) else {
                return false;
            };
            if cu.parent_port != 0 {
                let p = cu.parent_port as usize;
                if p <= pv.neighbors(u).len() && pv.neighbors(u)[p - 1] == c {
                    children.push(cu);
                }
            }
        }
        children.sort_by_key(|cert| cert.x);
        if children.is_empty() {
            if mine.y != mine.x + 1 {
                return false;
            }
        } else {
            if children[0].x != mine.x + 1 {
                return false;
            }
            for w in children.windows(2) {
                if w[1].x != w[0].y + 1 {
                    return false;
                }
            }
            if mine.y != children[children.len() - 1].y + 1 {
                return false;
            }
        }
        // --- Simulate the inner M1 verifier on synthesized identifiers.
        let radius = self.inner.radius().min(pv.radius());
        let keep: Vec<usize> = (0..pv.n()).filter(|&u| pv.dist(u) <= radius).collect();
        let mut old_to_new = vec![usize::MAX; pv.n()];
        for (new, &old) in keep.iter().enumerate() {
            old_to_new[old] = new;
        }
        let mut ids = Vec::with_capacity(keep.len());
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); keep.len()];
        let mut labels: Vec<S::Node> = Vec::with_capacity(keep.len());
        let mut proofs: Vec<BitString> = Vec::with_capacity(keep.len());
        let mut edge_data: EdgeMap<S::Edge> = EdgeMap::new();
        for (new_u, &old_u) in keep.iter().enumerate() {
            let Some(cu) = get(old_u) else {
                return false;
            };
            ids.push(interval_id(cu.x, cu.y));
            labels.push(pv.node_label(old_u).0.clone());
            proofs.push(cu.inner.clone());
            for &old_w in pv.neighbors(old_u) {
                let new_w = old_to_new[old_w];
                if new_w == usize::MAX {
                    continue;
                }
                adj[new_u].push(new_w);
                if new_u < new_w {
                    if let Some(l) = pv.edge_label(old_u, old_w) {
                        edge_data.insert((new_u, new_w), l.clone());
                    }
                }
            }
        }
        // Identifiers must be pairwise distinct within the view (global
        // uniqueness follows from the interval conditions; local
        // duplicates are rejected outright).
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return false;
        }
        for list in &mut adj {
            list.sort_unstable();
        }
        let dist: Vec<usize> = keep.iter().map(|&u| pv.dist(u)).collect();
        let view = View::from_parts(
            old_to_new[c],
            radius,
            ids,
            adj,
            dist,
            labels,
            edge_data,
            proofs,
        );
        self.inner.verify(&view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcp_core::evaluate;
    use lcp_graph::{generators, traversal, Graph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// An anonymous 1-bit bipartiteness scheme — uses no identifiers.
    struct AnonBipartite;
    impl AnonymousScheme for AnonBipartite {
        type Node = ();
        type Edge = ();
        fn name(&self) -> String {
            "anon-bipartite".into()
        }
        fn radius(&self) -> usize {
            1
        }
        fn holds(&self, inst: &Instance) -> bool {
            traversal::is_bipartite(inst.graph())
        }
        fn prove(&self, inst: &Instance, _leader: usize) -> Option<Proof> {
            let colors = traversal::bipartition(inst.graph())?;
            Some(Proof::from_fn(inst.n(), |v| {
                BitString::from_bits([colors[v] == 1])
            }))
        }
        fn verify(&self, view: &PortView<((), bool), ()>) -> bool {
            let c = view.center();
            let Some(mine) = view.proof(c).first() else {
                return false;
            };
            view.neighbors(c)
                .iter()
                .all(|&u| view.proof(u).first().is_some_and(|b| b != mine))
        }
    }

    #[test]
    fn m2_to_m1_translation_roundtrip() {
        let scheme = IdentifiedFromAnonymous::new(AnonBipartite);
        let yes = Instance::unlabeled(generators::grid(3, 4));
        let proof = scheme.prove(&yes).unwrap();
        assert!(evaluate(&scheme, &yes, &proof).accepted());
        // Tampering with the appended tree certificate is caught.
        let mut forged = proof.clone();
        forged.set(0, proof.get(5));
        assert!(!evaluate(&scheme, &yes, &forged).accepted());
        // No-instances refuse.
        let no = Instance::unlabeled(generators::cycle(5));
        assert!(!scheme.holds(&no));
        assert!(scheme.prove(&no).is_none());
    }

    /// An M1 scheme that genuinely reads identifiers: the §5.1 leaderless
    /// tree certificate (root = smallest-identifier rule is *not* checked
    /// — only consistency), certifying "n is odd" via counting.
    struct OddN;
    impl Scheme for OddN {
        type Node = ();
        type Edge = ();
        fn name(&self) -> String {
            "odd-n".into()
        }
        fn radius(&self) -> usize {
            1
        }
        fn holds(&self, inst: &Instance) -> bool {
            traversal::is_connected(inst.graph()) && inst.n() % 2 == 1
        }
        fn prove(&self, inst: &Instance) -> Option<Proof> {
            if !self.holds(inst) {
                return None;
            }
            let tree = lcp_graph::spanning::bfs_spanning_tree(inst.graph(), 0);
            let certs = lcp_core::components::CountingTreeCert::prove(inst.graph(), &tree);
            Some(Proof::from_fn(inst.n(), |v| {
                let mut w = BitWriter::new();
                certs[v].encode(&mut w);
                w.finish()
            }))
        }
        fn verify(&self, view: &View) -> bool {
            use lcp_core::components::CountingTreeCert;
            let certs = |u: usize| {
                let mut r = BitReader::new(view.proof(u));
                let c = CountingTreeCert::decode(&mut r).ok()?;
                r.is_exhausted().then_some(c)
            };
            if !CountingTreeCert::verify_at_center(view, certs) {
                return false;
            }
            certs(view.center()).expect("decoded").n_claim % 2 == 1
        }
    }

    #[test]
    fn m1_to_m2_translation_certifies_with_synthesized_ids() {
        let scheme = AnonymousFromIdentified::new(OddN);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..5 {
            let g = generators::random_connected(9, 5, &mut rng);
            let inst = Instance::unlabeled(g);
            assert!(scheme.holds(&inst));
            for leader in [0usize, 4, 8] {
                let proof = scheme.prove(&inst, leader).unwrap();
                let verdict = evaluate_anonymous(&scheme, &inst, leader, &proof);
                assert!(
                    verdict.accepted(),
                    "leader {leader} rejected at {:?}",
                    verdict.rejecting()
                );
            }
        }
    }

    #[test]
    fn m1_to_m2_rejects_even_n() {
        let scheme = AnonymousFromIdentified::new(OddN);
        let inst = Instance::unlabeled(generators::cycle(8));
        assert!(!scheme.holds(&inst));
        assert!(scheme.prove(&inst, 0).is_none());
    }

    #[test]
    fn m1_to_m2_rejects_forged_intervals() {
        let scheme = AnonymousFromIdentified::new(OddN);
        let inst = Instance::unlabeled(generators::cycle(7));
        let proof = scheme.prove(&inst, 2).unwrap();
        assert!(evaluate_anonymous(&scheme, &inst, 2, &proof).accepted());
        // Swap two nodes' whole certificates: interval chaining breaks.
        let mut forged = proof.clone();
        let p3 = proof.get(3);
        forged.set(3, proof.get(5));
        forged.set(5, p3);
        assert!(!evaluate_anonymous(&scheme, &inst, 2, &forged).accepted());
    }

    #[test]
    fn m1_to_m2_rejects_wrong_leader_binding() {
        // The proof was rooted at node 2; presenting leader 0 must fail
        // (the root's leader flag is checked).
        let scheme = AnonymousFromIdentified::new(OddN);
        let inst = Instance::unlabeled(generators::cycle(7));
        let proof = scheme.prove(&inst, 2).unwrap();
        assert!(!evaluate_anonymous(&scheme, &inst, 0, &proof).accepted());
    }

    #[test]
    fn m1_to_m2_overhead_is_logarithmic() {
        let scheme = AnonymousFromIdentified::new(OddN);
        let mut sizes = Vec::new();
        for n in [9usize, 33, 129] {
            let inst = Instance::unlabeled(generators::cycle(n));
            let proof = scheme.prove(&inst, 0).unwrap();
            sizes.push(proof.size());
        }
        // Roughly +O(log n) per 4× growth; certainly not linear.
        assert!(
            sizes[2] < sizes[0] * 4,
            "overhead must stay logarithmic: {sizes:?}"
        );
    }

    #[test]
    fn translated_scheme_is_really_anonymous() {
        // Re-assigning identifiers must not change the verdict, because
        // the M2 verifier only ever sees ports and proofs.
        let scheme = AnonymousFromIdentified::new(OddN);
        let g = generators::cycle(9);
        let inst = Instance::unlabeled(g.clone());
        let proof = scheme.prove(&inst, 3).unwrap();
        let relabeled = g.relabel(|id| lcp_graph::NodeId(id.0 + 1000)).unwrap();
        let inst2 = Instance::unlabeled(relabeled);
        // Ports are identifier-ordered; a uniform shift preserves order,
        // so the same proof must still be accepted.
        let v1 = evaluate_anonymous(&scheme, &inst, 3, &proof);
        let v2 = evaluate_anonymous(&scheme, &inst2, 3, &proof);
        assert_eq!(v1.accepted(), v2.accepted());
        assert!(v1.accepted());
    }

    #[test]
    fn m2_to_m1_completeness_via_harness() {
        let scheme = IdentifiedFromAnonymous::new(AnonBipartite);
        let instances: Vec<Instance> = vec![
            Instance::unlabeled(generators::cycle(6)),
            Instance::unlabeled(generators::grid(2, 5)),
            Instance::unlabeled(generators::complete_bipartite(3, 4)),
        ];
        lcp_core::harness::check_completeness(
            &scheme,
            &lcp_core::engine::prepare_sweep(&scheme, &instances),
        )
        .unwrap();
    }

    #[test]
    fn synthesized_ids_are_plausible_m1_ids() {
        // The DFS-interval identifiers of a translated proof are unique
        // and polynomially bounded — a legal M1 identifier assignment.
        let g = generators::random_connected(12, 7, &mut StdRng::seed_from_u64(9));
        let tree = lcp_graph::spanning::bfs_spanning_tree(&g, 0);
        let labels = crate::port::dfs_interval_labels(&g, &tree);
        let ids: std::collections::HashSet<NodeId> = labels
            .iter()
            .map(|&(x, y)| interval_id(x as u64, y as u64))
            .collect();
        assert_eq!(ids.len(), g.n());
        let relabeled: Result<Graph, _> = g.relabel(|id| {
            let v = g.index_of(id).unwrap();
            interval_id(labels[v].0 as u64, labels[v].1 as u64)
        });
        assert!(relabeled.is_ok());
    }
}
