//! The fault-tolerance contract of campaign execution:
//!
//! * a panicking cell becomes a `crashed` verdict (deterministic vs
//!   flaky, classified by a same-seed retry) while the rest of the
//!   matrix completes;
//! * a cell over its `--cell-budget-ms` wall budget reports `timed_out`
//!   instead of hanging the shard, and a generous budget leaves the
//!   report byte-identical to an unbounded run;
//! * `--checkpoint`/`--resume` reproduce the uninterrupted report
//!   **byte-for-byte**, tolerating exactly the torn final line a
//!   SIGKILL leaves behind (the standing ROADMAP policy).

use lcp_conformance::checkpoint::{run_campaign_checkpointed, run_churn_campaign_checkpointed};
use lcp_conformance::churn::run_churn_campaign;
use lcp_conformance::{
    campaign_registry, run_campaign, run_campaign_with, CampaignConfig, CellStatus, Profile,
};
use lcp_core::dynamic::DynScheme;
use lcp_core::harness::GrowthClass;
use lcp_core::{Instance, Proof, Scheme, View};
use lcp_graph::families::GraphFamily;
use lcp_graph::generators;
use lcp_schemes::registry::{CellRequest, Polarity, SchemeEntry};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Small but real: one honest scheme, two sizes, both polarities.
fn config(seed: u64) -> CampaignConfig {
    CampaignConfig {
        sizes: vec![6, 10],
        tamper_trials: 2,
        adversarial_iterations: 60,
        exhaustive_limit: 10_000,
        scheme_filter: Some("eulerian".into()),
        ..CampaignConfig::for_profile(Profile::Smoke, seed)
    }
}

fn eulerian_entry() -> SchemeEntry {
    campaign_registry()
        .into_iter()
        .find(|e| e.id == "eulerian")
        .expect("eulerian is registered")
}

/// An always-accepting probe scheme for builders that must succeed
/// after a flaky first attempt.
struct Trivial;

impl Scheme for Trivial {
    type Node = ();
    type Edge = ();
    fn name(&self) -> String {
        "trivial".into()
    }
    fn radius(&self) -> usize {
        1
    }
    fn holds(&self, _: &Instance) -> bool {
        true
    }
    fn prove(&self, inst: &Instance) -> Option<Proof> {
        Some(Proof::empty(inst.n()))
    }
    fn verify(&self, _: &View) -> bool {
        true
    }
}

fn entry(id: &'static str, builder: fn(&CellRequest) -> Option<DynScheme>) -> SchemeEntry {
    SchemeEntry {
        id,
        title: "fault-tolerance probe",
        paper_row: "—",
        claimed_bound: "O(1)",
        claimed_growth: GrowthClass::Constant,
        families: &[GraphFamily::Cycle],
        radius: 1,
        max_n: 64,
        builder,
    }
}

fn b_panic(req: &CellRequest) -> Option<DynScheme> {
    match req.polarity {
        Polarity::Yes => panic!("injected panic for isolation test"),
        Polarity::No => None,
    }
}

#[test]
fn a_panicking_scheme_crashes_its_cells_and_the_matrix_completes() {
    let cfg = config(7);
    let entries = vec![eulerian_entry(), entry("test-panics", b_panic)];
    let report = run_campaign_with(&entries, &cfg);

    let crashed: Vec<_> = report
        .schemes
        .iter()
        .flat_map(|s| &s.cells)
        .filter(|c| c.status == CellStatus::Crashed)
        .collect();
    assert!(!crashed.is_empty(), "the panicking builder must crash");
    for c in &crashed {
        assert_eq!(c.scheme, "test-panics", "only the panicking scheme crashes");
        assert_eq!(c.check, "isolation");
        assert!(
            c.detail.contains("injected panic for isolation test"),
            "payload recorded: {}",
            c.detail
        );
        assert!(
            c.detail
                .contains("deterministic: retry panicked identically"),
            "same-seed retry classifies the panic: {}",
            c.detail
        );
    }
    assert_eq!(report.unresolved(), crashed.len());

    // The healthy scheme is untouched: byte-identical to running alone.
    let alone = run_campaign_with(&[eulerian_entry()], &cfg);
    let healthy = report.schemes.iter().find(|s| s.id == "eulerian").unwrap();
    let baseline = alone.schemes.iter().find(|s| s.id == "eulerian").unwrap();
    for (a, b) in healthy.cells.iter().zip(&baseline.cells) {
        assert_eq!((a.status, &a.detail), (b.status, &b.detail));
    }
}

static FLAKY_CALLS: AtomicUsize = AtomicUsize::new(0);

fn b_flaky(req: &CellRequest) -> Option<DynScheme> {
    match req.polarity {
        Polarity::Yes => {
            if FLAKY_CALLS.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("flaky first attempt");
            }
            Some(DynScheme::seal(
                Trivial,
                Instance::unlabeled(generators::cycle(req.n.max(3))),
            ))
        }
        Polarity::No => None,
    }
}

#[test]
fn a_flaky_panic_is_retried_and_annotated() {
    let cfg = CampaignConfig {
        sizes: vec![6],
        ..config(7)
    };
    let report = run_campaign_with(&[entry("test-flaky", b_flaky)], &cfg);
    let recovered: Vec<_> = report
        .schemes
        .iter()
        .flat_map(|s| &s.cells)
        .filter(|c| c.detail.contains("[recovered: first attempt panicked:"))
        .collect();
    assert_eq!(recovered.len(), 1, "exactly one cell hit the flaky panic");
    assert_eq!(recovered[0].status, CellStatus::Pass);
    assert!(recovered[0].detail.contains("flaky first attempt"));
    assert_eq!(report.unresolved(), 0, "a recovered flake is not a crash");
}

#[test]
fn a_zero_budget_times_cells_out_without_hanging_or_failing() {
    let report = run_campaign(&CampaignConfig {
        cell_budget_ms: Some(0),
        ..config(7)
    });
    let timed_out = report.count(CellStatus::TimedOut);
    assert!(timed_out > 0, "a zero budget must expire somewhere");
    assert_eq!(report.count(CellStatus::Fail), 0);
    assert_eq!(report.unresolved(), timed_out);
    for c in report.schemes.iter().flat_map(|s| &s.cells) {
        if c.status == CellStatus::TimedOut {
            assert!(
                c.detail.contains("wall budget expired"),
                "timeout detail names the budget: {}",
                c.detail
            );
        }
    }
}

#[test]
fn a_generous_budget_is_byte_identical_to_no_budget() {
    let unbounded = run_campaign(&config(7)).to_json(false);
    let bounded = run_campaign(&CampaignConfig {
        cell_budget_ms: Some(3_600_000),
        ..config(7)
    })
    .to_json(false);
    assert_eq!(
        unbounded, bounded,
        "an unexercised budget must not perturb the report"
    );
}

fn tmp(name: &str) -> String {
    let mut p = std::env::temp_dir();
    p.push(format!("lcp-ft-{}-{name}", std::process::id()));
    p.to_string_lossy().into_owned()
}

/// Keeps the header plus the first `cells` cell lines, then appends the
/// torn half-line a SIGKILL mid-append leaves behind.
fn truncate_checkpoint(full: &str, partial: &str, cells: usize) {
    let text = std::fs::read_to_string(full).unwrap();
    let mut kept: Vec<&str> = text.lines().take(1 + cells).collect();
    kept.push("{ \"scheme\": \"eulerian\", \"coo");
    std::fs::write(partial, kept.join("\n")).unwrap();
}

#[test]
fn resuming_a_killed_static_shard_reproduces_the_report_bytes() {
    let cfg = config(7);
    let baseline = run_campaign(&cfg).to_json(false);

    let full = tmp("static-full.jsonl");
    let (complete, resumed) = run_campaign_checkpointed(&cfg, Some(&full), None).unwrap();
    assert_eq!(resumed, 0);
    assert_eq!(complete.to_json(false), baseline);

    let partial = tmp("static-partial.jsonl");
    truncate_checkpoint(&full, &partial, 5);
    let (report, resumed) =
        run_campaign_checkpointed(&cfg, Some(&partial), Some(&partial)).unwrap();
    assert_eq!(
        resumed, 5,
        "five recorded cells resume; the torn line is dropped"
    );
    assert_eq!(
        report.to_json(false),
        baseline,
        "resumed report must be byte-identical to the uninterrupted run"
    );

    // The rewritten checkpoint is complete and compacted: resuming from
    // it runs zero cells and still reproduces the bytes.
    let (again, resumed) = run_campaign_checkpointed(&cfg, None, Some(&partial)).unwrap();
    assert_eq!(resumed, again.cell_count());
    assert_eq!(again.to_json(false), baseline);

    let _ = std::fs::remove_file(&full);
    let _ = std::fs::remove_file(&partial);
}

#[test]
fn resuming_a_killed_churn_shard_reproduces_the_report_bytes() {
    let cfg = config(7);
    let steps = 6;
    let baseline = run_churn_campaign(&cfg, steps).to_json(false);

    let full = tmp("churn-full.jsonl");
    let (complete, _) = run_churn_campaign_checkpointed(&cfg, steps, Some(&full), None).unwrap();
    assert_eq!(complete.to_json(false), baseline);

    let partial = tmp("churn-partial.jsonl");
    truncate_checkpoint(&full, &partial, 4);
    let (report, resumed) =
        run_churn_campaign_checkpointed(&cfg, steps, None, Some(&partial)).unwrap();
    assert_eq!(resumed, 4);
    assert_eq!(
        report.to_json(false),
        baseline,
        "resumed churn report must be byte-identical to the uninterrupted run"
    );

    let _ = std::fs::remove_file(&full);
    let _ = std::fs::remove_file(&partial);
}

#[test]
fn a_checkpoint_from_another_configuration_refuses_to_resume() {
    let path = tmp("mismatch.jsonl");
    let (_, _) = run_campaign_checkpointed(&config(7), Some(&path), None).unwrap();
    let err = run_campaign_checkpointed(&config(8), None, Some(&path)).unwrap_err();
    assert!(
        err.to_string().contains("header mismatch"),
        "seed change must refuse the checkpoint: {err}"
    );
    // Mode changes are config changes too.
    let err = run_churn_campaign_checkpointed(&config(7), 6, None, Some(&path)).unwrap_err();
    assert!(err.to_string().contains("header mismatch"), "{err}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn damage_before_the_final_checkpoint_line_refuses_to_resume() {
    let cfg = config(7);
    let full = tmp("damaged.jsonl");
    let _ = run_campaign_checkpointed(&cfg, Some(&full), None).unwrap();
    let text = std::fs::read_to_string(&full).unwrap();
    let mut lines: Vec<&str> = text.lines().collect();
    lines[2] = "{ not json at all";
    std::fs::write(&full, lines.join("\n")).unwrap();
    let err = run_campaign_checkpointed(&cfg, None, Some(&full)).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains(&full) && msg.contains("byte"),
        "mid-file damage is named with file and byte offset: {msg}"
    );
    let _ = std::fs::remove_file(&full);
}
