//! Proofs: per-node bit strings (§2.1).

use crate::bits::BitString;

/// A proof `P : V(G) → {0,1}*`, stored per node index.
///
/// The *size* `|P|` is the maximum number of bits at any node — the
/// quantity Table 1 classifies. The empty proof `ε` has size 0.
///
/// ```
/// use lcp_core::{BitString, Proof};
///
/// let p = Proof::from_fn(3, |v| BitString::from_bits((0..v).map(|_| true)));
/// assert_eq!(p.size(), 2);
/// assert_eq!(p.total_bits(), 3);
/// assert!(p.get(0).is_empty());
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Proof {
    per_node: Vec<BitString>,
}

impl Proof {
    /// The empty proof `ε` for `n` nodes (0 bits everywhere).
    pub fn empty(n: usize) -> Self {
        Proof {
            per_node: vec![BitString::new(); n],
        }
    }

    /// Builds a proof by evaluating `f` at every node index.
    pub fn from_fn<F>(n: usize, mut f: F) -> Self
    where
        F: FnMut(usize) -> BitString,
    {
        Proof {
            per_node: (0..n).map(&mut f).collect(),
        }
    }

    /// Builds a proof from explicit per-node strings.
    pub fn from_strings(strings: Vec<BitString>) -> Self {
        Proof { per_node: strings }
    }

    /// Number of nodes the proof labels.
    pub fn n(&self) -> usize {
        self.per_node.len()
    }

    /// The proof string of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn get(&self, v: usize) -> &BitString {
        &self.per_node[v]
    }

    /// Replaces the proof string of node `v` (adversarial testing hook).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn set(&mut self, v: usize, s: BitString) {
        self.per_node[v] = s;
    }

    /// The proof size `|P|`: maximum bits at any node (0 for empty graphs).
    pub fn size(&self) -> usize {
        self.per_node.iter().map(BitString::len).max().unwrap_or(0)
    }

    /// Total bits across all nodes.
    pub fn total_bits(&self) -> usize {
        self.per_node.iter().map(BitString::len).sum()
    }

    /// Iterates over the per-node strings in index order.
    pub fn iter(&self) -> impl Iterator<Item = &BitString> {
        self.per_node.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_proof_has_size_zero() {
        let p = Proof::empty(5);
        assert_eq!(p.n(), 5);
        assert_eq!(p.size(), 0);
        assert_eq!(p.total_bits(), 0);
        assert!(p.iter().all(BitString::is_empty));
    }

    #[test]
    fn size_is_max_not_total() {
        let p = Proof::from_strings(vec![
            BitString::from_bits([true]),
            BitString::from_bits([true, false, true]),
            BitString::new(),
        ]);
        assert_eq!(p.size(), 3);
        assert_eq!(p.total_bits(), 4);
    }

    #[test]
    fn set_overwrites() {
        let mut p = Proof::empty(2);
        p.set(1, BitString::from_bits([true, true]));
        assert_eq!(p.get(1).len(), 2);
        assert_eq!(p.size(), 2);
    }

    #[test]
    fn proof_on_zero_nodes() {
        let p = Proof::empty(0);
        assert_eq!(p.size(), 0);
        assert_eq!(p.n(), 0);
    }
}
