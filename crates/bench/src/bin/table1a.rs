//! Regenerates **Table 1(a)**: the local proof complexity of graph
//! properties. For every row we run the actual (prover, verifier) pair
//! over an instance sweep, measure the honest proof sizes in bits per
//! node, and fit the growth class the paper claims.

use lcp_bench::{param_row, print_table, run_row, Row};
use lcp_core::harness::GrowthClass;
use lcp_core::{Instance, Scheme};
use lcp_graph::{generators, line_graph, ops};
use lcp_logic::{formulas, Sigma11Scheme};
use lcp_schemes::bipartite::Bipartite;
use lcp_schemes::chromatic::{ChromaticAtMost, NonBipartite};
use lcp_schemes::complement::Complement;
use lcp_schemes::cycles::{EvenCycle, OddCycle};
use lcp_schemes::eulerian::Eulerian;
use lcp_schemes::labels::{ArcDir, StMark};
use lcp_schemes::line_graph::LineGraph;
use lcp_schemes::st_connectivity::StConnectivity;
use lcp_schemes::st_reach::{StReachability, StUnreachability};
use lcp_schemes::tree_universal::tree_fixpoint_free;
use lcp_schemes::universal::{non_three_colorable, prime_order, symmetric_graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn unlabeled(graphs: Vec<lcp_graph::Graph>) -> Vec<Instance> {
    graphs.into_iter().map(Instance::unlabeled).collect()
}

fn st(g: lcp_graph::Graph, s: usize, t: usize) -> Instance<StMark> {
    let marks = StMark::mark(g.n(), s, t);
    Instance::with_node_data(g, marks)
}

fn main() {
    let mut rows: Vec<Row> = Vec::new();

    // ---- LCP(0) ----
    rows.push(run_row(
        "T1a.1",
        "Eulerian graph",
        "conn.",
        "0",
        &Eulerian,
        &unlabeled(vec![
            generators::cycle(16),
            generators::cycle(64),
            generators::complete(5),
            generators::complete(9),
        ]),
        GrowthClass::Zero,
    ));
    rows.push(run_row(
        "T1a.2",
        "line graph",
        "general",
        "0",
        &LineGraph,
        &unlabeled(vec![
            line_graph::line_graph(&generators::star(5)),
            line_graph::line_graph(&generators::grid(3, 3)),
            line_graph::line_graph(&generators::cycle(20)),
            generators::path(40),
        ]),
        GrowthClass::Zero,
    ));

    // ---- LCP(O(1)) ----
    rows.push(run_row(
        "T1a.3",
        "s–t reachability",
        "undir.",
        "Θ(1)",
        &StReachability,
        &[
            st(generators::grid(4, 4), 0, 15),
            st(generators::grid(6, 6), 0, 35),
            st(generators::cycle(64), 0, 32),
        ],
        GrowthClass::Constant,
    ));
    let unreach_instances: Vec<Instance<StMark, ArcDir>> = [8usize, 16, 32]
        .iter()
        .map(|&half| {
            let g = ops::disjoint_union(
                &generators::cycle(half),
                &ops::shift_ids(&generators::cycle(half), 1000),
            )
            .unwrap();
            let marks = StMark::mark(g.n(), 0, half);
            Instance::with_data(g, marks, Default::default())
        })
        .collect();
    rows.push(run_row(
        "T1a.4",
        "s–t unreachability",
        "undir.",
        "Θ(1)",
        &StUnreachability::undirected(),
        &unreach_instances,
        GrowthClass::Constant,
    ));
    let directed_instances: Vec<Instance<StMark, ArcDir>> = [8usize, 16, 32]
        .iter()
        .map(|&n| {
            let g = generators::path(n);
            let mut edges = lcp_core::EdgeMap::new();
            for (u, v) in g.edges() {
                edges.insert((u, v), ArcDir::Forward);
            }
            let marks = StMark::mark(n, n - 1, 0); // t upstream of s
            Instance::with_data(g, marks, edges)
        })
        .collect();
    rows.push(run_row(
        "T1a.5",
        "s–t unreachability",
        "directed",
        "Θ(1)",
        &StUnreachability::directed(),
        &directed_instances,
        GrowthClass::Constant,
    ));
    let planar_conn: Vec<Instance<StMark>> = [(3usize, 4usize), (4, 6), (5, 8)]
        .iter()
        .map(|&(r, c)| st(generators::grid(r, c), 0, r * c - 1))
        .collect();
    rows.push(run_row(
        "T1a.6",
        "s–t connectivity = 2 (colored idx)",
        "planar",
        "Θ(1)",
        &StConnectivity::planar(2),
        &planar_conn,
        GrowthClass::Constant,
    ));
    rows.push(run_row(
        "T1a.7",
        "bipartite graph",
        "general",
        "Θ(1)",
        &Bipartite,
        &unlabeled(vec![
            generators::cycle(16),
            generators::grid(6, 6),
            generators::cycle(128),
            generators::complete_bipartite(8, 8),
        ]),
        GrowthClass::Constant,
    ));
    rows.push(run_row(
        "T1a.8",
        "even n(G)",
        "cycles",
        "Θ(1)",
        &EvenCycle,
        &unlabeled(vec![
            generators::cycle(8),
            generators::cycle(32),
            generators::cycle(128),
            generators::cycle(512),
        ]),
        GrowthClass::Constant,
    ));

    // ---- LCP(O(log k)) ----
    let mut conn_pairs = Vec::new();
    let mut conn_ok = true;
    for k in [2usize, 4, 8, 16] {
        let inst = st(generators::complete_bipartite(2, k), 0, 1);
        let scheme = StConnectivity::general(k);
        match scheme.prove(&inst) {
            Some(p) => conn_pairs.push((k, p.size())),
            None => conn_ok = false,
        }
    }
    conn_ok &= conn_pairs.windows(2).all(|w| w[0].1 <= w[1].1);
    rows.push(param_row(
        "T1a.9",
        "s–t connectivity = k",
        "general",
        "O(log k)",
        "k",
        &conn_pairs,
        conn_ok,
    ));
    let mut chrom_pairs = Vec::new();
    let mut chrom_ok = true;
    for k in [2usize, 4, 8, 16] {
        let inst = Instance::unlabeled(generators::complete(k));
        let scheme = ChromaticAtMost { k };
        match scheme.prove(&inst) {
            Some(p) => chrom_pairs.push((k, p.size())),
            None => chrom_ok = false,
        }
    }
    chrom_ok &= chrom_pairs
        .iter()
        .all(|&(k, b)| b == usize::max(k - 1, 1).ilog2() as usize + 1);
    rows.push(param_row(
        "T1a.10",
        "chromatic number ≤ k",
        "general",
        "O(log k)",
        "k",
        &chrom_pairs,
        chrom_ok,
    ));

    // ---- LogLCP ----
    rows.push(run_row(
        "T1a.11",
        "coLCP(0): non-Eulerian",
        "conn.",
        "O(log n)",
        &Complement::new(Eulerian),
        &unlabeled(vec![
            generators::path(8),
            generators::path(32),
            generators::path(128),
            generators::path(512),
        ]),
        GrowthClass::Logarithmic,
    ));
    let sigma = Sigma11Scheme::new(formulas::independent_dominating_set(), |g| {
        formulas::independent_dominating_witness(g)
    });
    rows.push(run_row(
        "T1a.12",
        "monadic Σ¹₁ (indep. dominating)",
        "conn.",
        "O(log n)",
        &sigma,
        &unlabeled(vec![
            generators::cycle(8),
            generators::cycle(32),
            generators::cycle(128),
            generators::cycle(512),
        ]),
        GrowthClass::Logarithmic,
    ));
    rows.push(run_row(
        "T1a.13",
        "odd n(G)",
        "cycles",
        "Θ(log n)",
        &OddCycle,
        &unlabeled(vec![
            generators::cycle(9),
            generators::cycle(33),
            generators::cycle(129),
            generators::cycle(513),
        ]),
        GrowthClass::Logarithmic,
    ));
    rows.push(run_row(
        "T1a.14",
        "chromatic number > 2",
        "conn.",
        "Θ(log n)",
        &NonBipartite,
        &unlabeled(vec![
            generators::cycle(9),
            generators::cycle(33),
            generators::cycle(129),
            generators::cycle(513),
        ]),
        GrowthClass::Logarithmic,
    ));

    // ---- LCP(poly(n)) ----
    let mut rng = StdRng::seed_from_u64(1);
    let doubled_trees: Vec<Instance> = [6usize, 12, 24, 48]
        .iter()
        .map(|&half| {
            let t = generators::random_tree(half, &mut rng);
            let t2 = ops::shift_ids(&t, 10_000);
            Instance::unlabeled(ops::join_with_path(&t, 0, &t2, 0, &[]).unwrap())
        })
        .collect();
    rows.push(run_row(
        "T1a.15",
        "fixpoint-free symmetry",
        "trees",
        "Θ(n)",
        &tree_fixpoint_free(),
        &doubled_trees,
        GrowthClass::Linear,
    ));
    rows.push(run_row(
        "T1a.16",
        "symmetric graph",
        "conn.",
        "Θ(n²)",
        &symmetric_graph(),
        &unlabeled(vec![
            generators::cycle(8),
            generators::cycle(16),
            generators::cycle(32),
            generators::cycle(64),
        ]),
        GrowthClass::Quadratic,
    ));
    rows.push(run_row(
        "T1a.17",
        "chromatic number > 3",
        "conn.",
        "Ω(n²/log n)…O(n²)",
        &non_three_colorable(),
        &unlabeled(vec![
            generators::complete(5),
            generators::complete(9),
            generators::complete(17),
            generators::complete(33),
        ]),
        GrowthClass::Quadratic,
    ));
    rows.push(run_row(
        "T1a.18",
        "computable property (prime n)",
        "conn.",
        "O(n²)",
        &prime_order(),
        &unlabeled(vec![
            generators::cycle(5),
            generators::cycle(11),
            generators::cycle(23),
            generators::cycle(47),
        ]),
        GrowthClass::Quadratic,
    ));

    print_table(
        "Table 1(a) — local proof complexity of graph properties (measured)",
        &rows,
    );
    println!(
        "note: 'connected graph / general' is unclassified (—) in the paper; see the\n\
         per-component caveat on lcp_core::components::TreeCert for why."
    );
}
