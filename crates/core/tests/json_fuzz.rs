//! Fuzz properties for the hand-rolled JSON codec every campaign
//! artifact (reports, checkpoints, bench series) flows through:
//!
//! * [`Json::parse`] never panics, whatever bytes arrive — malformed
//!   input is a [`JsonError`] with a byte offset, full stop;
//! * parse → serialize → parse round-trips structurally on arbitrary
//!   valid documents, including escapes, nesting, and unicode.

use lcp_core::json::{escape, Json};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The characters a JSON parser actually branches on — random text over
/// this alphabet reaches far deeper than uniform bytes.
const JSONISH: &[u8] = br#"{}[]:,"\ truefalsnu0123456789-+.eE"#;

fn jsonish(len: usize, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| JSONISH[rng.random_range(0..JSONISH.len())] as char)
        .collect()
}

fn arbitrary_text(len: usize, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let bytes: Vec<u8> = (0..len)
        .map(|_| rng.random_range(0..256usize) as u8)
        .collect();
    String::from_utf8_lossy(&bytes).into_owned()
}

/// A random document of bounded depth, built from a seed. Object keys
/// are made unique ("duplicate keys keep the first" would otherwise
/// break structural round-trips). Numbers stay integral: the codec
/// keeps number text verbatim, so any canonical form round-trips.
fn document(rng: &mut StdRng, depth: usize) -> Json {
    match if depth == 0 {
        rng.random_range(0..4usize)
    } else {
        rng.random_range(0..6usize)
    } {
        0 => Json::Null,
        1 => Json::Bool(rng.random_bool(0.5)),
        2 => Json::Num((rng.random_range(0..u64::MAX) as i64).to_string()),
        3 => {
            let len = rng.random_range(0..12usize);
            Json::Str(
                (0..len)
                    .map(|_| {
                        // Quotes, backslashes, control bytes, and a
                        // multi-byte char — everything escape() handles.
                        *['a', '"', '\\', '\n', '\t', '\u{1}', 'Ω', '/', ' ']
                            .get(rng.random_range(0..9usize))
                            .unwrap()
                    })
                    .collect(),
            )
        }
        4 => {
            let len = rng.random_range(0..5usize);
            Json::Arr((0..len).map(|_| document(rng, depth - 1)).collect())
        }
        _ => {
            let len = rng.random_range(0..5usize);
            Json::Obj(
                (0..len)
                    .map(|i| (format!("k{i}"), document(rng, depth - 1)))
                    .collect(),
            )
        }
    }
}

/// The serializer under test: the same shape every report writer in the
/// workspace emits by hand.
fn render(doc: &Json) -> String {
    match doc {
        Json::Null => "null".into(),
        Json::Bool(b) => b.to_string(),
        Json::Num(text) => text.clone(),
        Json::Str(s) => escape(s),
        Json::Arr(items) => {
            let inner: Vec<String> = items.iter().map(render).collect();
            format!("[{}]", inner.join(", "))
        }
        Json::Obj(fields) => {
            let inner: Vec<String> = fields
                .iter()
                .map(|(k, v)| format!("{}: {}", escape(k), render(v)))
                .collect();
            format!("{{ {} }}", inner.join(", "))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parse_never_panics_on_arbitrary_bytes(len in 0usize..400, seed in any::<u64>()) {
        let _ = Json::parse(&arbitrary_text(len, seed));
    }

    #[test]
    fn parse_never_panics_on_jsonish_text(len in 0usize..400, seed in any::<u64>()) {
        let _ = Json::parse(&jsonish(len, seed));
    }

    #[test]
    fn valid_documents_roundtrip_structurally(seed in any::<u64>(), depth in 0usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = document(&mut rng, depth);
        let text = render(&doc);
        let parsed = Json::parse(&text);
        prop_assert_eq!(parsed.as_ref(), Ok(&doc), "rendered text: {}", text);
        // And the reparse is a fixpoint: serialize(parse(s)) == s.
        prop_assert_eq!(render(&parsed.unwrap()), text);
    }

    #[test]
    fn truncating_a_valid_document_never_panics(seed in any::<u64>(), depth in 1usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let text = render(&document(&mut rng, depth));
        for cut in 0..text.len() {
            if text.is_char_boundary(cut) {
                let _ = Json::parse(&text[..cut]);
            }
        }
    }

    #[test]
    fn parse_errors_carry_a_byte_offset_within_the_input(len in 1usize..200, seed in any::<u64>()) {
        let text = jsonish(len, seed);
        if let Err(e) = Json::parse(&text) {
            prop_assert!(
                e.to_string().contains("byte"),
                "error names its offset: {}", e
            );
        }
    }
}
