//! The artifact directory's correctness contract at campaign scale:
//! `--artifact-dir` is an *economic* knob, never a semantic one. A
//! campaign that writes artifacts cold, a campaign that maps them warm,
//! and a campaign that never touches disk must produce byte-identical
//! deterministic reports — static and churn alike — and a warmed
//! directory must actually be what serves the cells (zero rebuilds).

use lcp_conformance::churn::run_churn_campaign;
use lcp_conformance::{run_campaign, warm_artifacts, CampaignConfig, Profile};
use std::path::PathBuf;

/// Small but representative: every scheme, two sizes, both polarities.
fn config(dir: Option<PathBuf>) -> CampaignConfig {
    CampaignConfig {
        sizes: vec![6, 10],
        tamper_trials: 4,
        adversarial_iterations: 120,
        exhaustive_limit: 20_000,
        artifact_dir: dir,
        ..CampaignConfig::for_profile(Profile::Smoke, 7)
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lcp-conf-art-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn lcpc_count(dir: &std::path::Path) -> usize {
    std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(Result::ok)
                .filter(|e| e.path().extension().is_some_and(|x| x == "lcpc"))
                .count()
        })
        .unwrap_or(0)
}

#[test]
fn static_reports_are_byte_identical_across_artifact_modes() {
    let dir = temp_dir("static");
    let baseline = run_campaign(&config(None)).to_json(false);

    // Cold: the directory starts empty, every core is built and saved.
    let cold = run_campaign(&config(Some(dir.clone()))).to_json(false);
    assert_eq!(baseline, cold, "writing artifacts changed the report");
    let persisted = lcpc_count(&dir);
    assert!(persisted > 0, "cold campaign persisted nothing");

    // Warm: the same campaign again, now served from mapped files.
    let warm = run_campaign(&config(Some(dir.clone()))).to_json(false);
    assert_eq!(baseline, warm, "mapped artifacts changed the report");
    assert_eq!(lcpc_count(&dir), persisted, "warm run rewrote artifacts");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn churn_reports_are_byte_identical_across_artifact_modes() {
    let steps = 12;
    let dir = temp_dir("churn");
    let baseline = run_churn_campaign(&config(None), steps).to_json(false);

    let cold = run_churn_campaign(&config(Some(dir.clone())), steps).to_json(false);
    assert_eq!(baseline, cold, "writing artifacts changed the churn report");
    assert!(
        lcpc_count(&dir) > 0,
        "cold churn campaign persisted nothing"
    );

    let warm = run_churn_campaign(&config(Some(dir.clone())), steps).to_json(false);
    assert_eq!(baseline, warm, "mapped artifacts changed the churn report");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn warming_builds_once_and_serves_from_disk_thereafter() {
    let dir = temp_dir("warm");

    // First pass over an empty directory: everything applicable is
    // built (or deduplicated in process when cells share a skeleton).
    let first = warm_artifacts(&config(Some(dir.clone())));
    assert!(first.built > 0, "first warm pass built nothing: {first:?}");
    assert_eq!(first.loaded, 0, "empty dir cannot serve loads: {first:?}");

    // Second pass: every core it built last time now comes off disk.
    let second = warm_artifacts(&config(Some(dir.clone())));
    assert_eq!(second.built, 0, "warm dir still built cores: {second:?}");
    assert_eq!(
        second.loaded, first.built,
        "every built core must map back: {first:?} then {second:?}"
    );
    assert_eq!(
        (second.cache_hits, second.skipped),
        (first.cache_hits, first.skipped),
        "dedup and applicability are mode-independent"
    );

    // And a campaign over the warmed directory still reports exactly
    // what an artifact-free campaign reports.
    let warmed = run_campaign(&config(Some(dir.clone()))).to_json(false);
    let fresh = run_campaign(&config(None)).to_json(false);
    assert_eq!(warmed, fresh, "pre-warmed artifacts changed the report");

    std::fs::remove_dir_all(&dir).ok();
}
