//! The type-erased scheme layer: one object-safe handle per
//! `(scheme, instance)` cell.
//!
//! [`Scheme`] has two associated types, so a heterogeneous collection —
//! the scheme registry, the conformance campaign's `(scheme, instance)`
//! matrix — cannot hold `&dyn Scheme` directly. [`DynScheme::seal`]
//! erases the types at the only moment they are all known (when the
//! typed instance is constructed): it moves the scheme *and* its
//! instance behind one `Arc` and exposes every harness operation as a
//! boxed closure. Each heavy operation (completeness, exhaustive
//! soundness, adversarial search, tamper probing) internally builds a
//! [`PreparedInstance`] and runs entirely on the cached engine, so
//! erasure costs one skeleton preparation per operation — never one per
//! candidate proof.
//!
//! ```
//! use lcp_core::dynamic::DynScheme;
//! use lcp_core::{Instance, Proof, Scheme, View};
//! use lcp_graph::generators;
//!
//! struct EvenDegrees;
//! impl Scheme for EvenDegrees {
//!     type Node = ();
//!     type Edge = ();
//!     fn name(&self) -> String { "even-degrees".into() }
//!     fn radius(&self) -> usize { 1 }
//!     fn holds(&self, inst: &Instance) -> bool {
//!         lcp_graph::euler::all_degrees_even(inst.graph())
//!     }
//!     fn prove(&self, inst: &Instance) -> Option<Proof> {
//!         self.holds(inst).then(|| Proof::empty(inst.n()))
//!     }
//!     fn verify(&self, view: &View) -> bool {
//!         view.degree(view.center()) % 2 == 0
//!     }
//! }
//!
//! // Cells of different Node/Edge types live in one collection.
//! let cells: Vec<DynScheme> = vec![
//!     DynScheme::seal(EvenDegrees, Instance::unlabeled(generators::cycle(6))),
//!     DynScheme::seal(EvenDegrees, Instance::unlabeled(generators::path(4))),
//! ];
//! assert!(cells[0].holds());
//! assert!(!cells[1].holds());
//! assert_eq!(cells[0].check_completeness(), Ok(Some(0)));
//! ```

use crate::engine::PreparedInstance;
use crate::harness::{
    adversarial_proof_search, check_instance, check_soundness_exhaustive, CompletenessError,
    Soundness, SoundnessError,
};
use crate::instance::Instance;
use crate::proof::Proof;
use crate::scheme::{evaluate, evaluate_until_reject, Scheme, Verdict};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt;
use std::sync::Arc;

/// Result of a seeded bit-flip tamper probe against the honest proof of
/// a yes-instance (see [`DynScheme::tamper_probe`]).
///
/// A flip that still fully accepts is *not* a soundness violation — the
/// instance is still a yes-instance and proofs need not be unique — but
/// the detection rate is a useful sensitivity signal, and the witness
/// node feeds the campaign report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TamperProbe {
    /// Single-bit flips attempted.
    pub trials: usize,
    /// Flips some node rejected.
    pub detected: usize,
    /// Flips every node still accepted.
    pub undetected: usize,
    /// A node that rejected a tampered proof, when any flip was detected.
    pub witness: Option<usize>,
}

/// A type-erased `(scheme, instance)` cell: every associated-type-bound
/// [`Scheme`] operation re-exposed behind boxed closures over the shared
/// cell, plus engine-backed harness checks.
///
/// Build one with [`DynScheme::seal`]; collections of `DynScheme` are the
/// currency of the scheme registry and the conformance campaign.
pub struct DynScheme {
    name: String,
    radius: usize,
    n: usize,
    holds: bool,
    prove: Box<dyn Fn() -> Option<Proof> + Send + Sync>,
    evaluate: Box<dyn Fn(&Proof) -> Verdict + Send + Sync>,
    until_reject: Box<dyn Fn(&Proof) -> Option<usize> + Send + Sync>,
    completeness: Box<dyn Fn() -> Result<Option<usize>, CompletenessError> + Send + Sync>,
    soundness: Box<dyn Fn(usize) -> Result<Soundness, SoundnessError> + Send + Sync>,
    adversarial: Box<dyn Fn(usize, usize, u64) -> Option<Proof> + Send + Sync>,
    tamper: Box<dyn Fn(usize, u64) -> Option<TamperProbe> + Send + Sync>,
}

impl fmt::Debug for DynScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DynScheme")
            .field("name", &self.name)
            .field("radius", &self.radius)
            .field("n", &self.n)
            .field("holds", &self.holds)
            .finish()
    }
}

impl DynScheme {
    /// Seals `scheme` together with one concrete `inst`, erasing the
    /// associated types.
    ///
    /// The `Send + Sync + 'static` bounds are required in both feature
    /// configurations on purpose (additive features — see
    /// [`crate::engine::prepare`]); every scheme in this workspace
    /// satisfies them.
    pub fn seal<S>(scheme: S, inst: Instance<S::Node, S::Edge>) -> DynScheme
    where
        S: Scheme + Send + Sync + 'static,
        S::Node: Clone + Send + Sync + 'static,
        S::Edge: Clone + Send + Sync + 'static,
    {
        let name = scheme.name();
        let radius = scheme.radius();
        let n = inst.n();
        let holds = scheme.holds(&inst);
        let cell = Arc::new((scheme, inst));

        let c = Arc::clone(&cell);
        let prove = Box::new(move || c.0.prove(&c.1));
        let c = Arc::clone(&cell);
        let eval = Box::new(move |proof: &Proof| evaluate(&c.0, &c.1, proof));
        let c = Arc::clone(&cell);
        let until_reject = Box::new(move |proof: &Proof| evaluate_until_reject(&c.0, &c.1, proof));
        let c = Arc::clone(&cell);
        let completeness = Box::new(move || {
            let prep = PreparedInstance::new(&c.1, c.0.radius());
            check_instance(&c.0, &prep)
        });
        let c = Arc::clone(&cell);
        let soundness = Box::new(move |max_bits: usize| {
            let prep = PreparedInstance::new(&c.1, c.0.radius());
            check_soundness_exhaustive(&c.0, &prep, max_bits)
        });
        let c = Arc::clone(&cell);
        let adversarial = Box::new(move |budget: usize, iterations: usize, seed: u64| {
            let prep = PreparedInstance::new(&c.1, c.0.radius());
            let mut rng = StdRng::seed_from_u64(seed);
            adversarial_proof_search(&c.0, &prep, budget, iterations, &mut rng)
        });
        let c = Arc::clone(&cell);
        let tamper =
            Box::new(move |trials: usize, seed: u64| tamper_probe(&c.0, &c.1, trials, seed));

        DynScheme {
            name,
            radius,
            n,
            holds,
            prove,
            evaluate: eval,
            until_reject,
            completeness,
            soundness,
            adversarial,
            tamper,
        }
    }

    /// The sealed scheme's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The verifier's horizon `r`.
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// `n(G)` of the sealed instance.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Ground truth of the sealed instance (computed once at seal time).
    pub fn holds(&self) -> bool {
        self.holds
    }

    /// Runs the sealed prover.
    pub fn prove(&self) -> Option<Proof> {
        (self.prove)()
    }

    /// Runs the verifier at every node (reference executor).
    pub fn evaluate(&self, proof: &Proof) -> Verdict {
        (self.evaluate)(proof)
    }

    /// First rejecting node, or `None` when every node accepts.
    pub fn evaluate_until_reject(&self, proof: &Proof) -> Option<usize> {
        (self.until_reject)(proof)
    }

    /// Single-instance completeness check on the cached engine
    /// ([`crate::harness::check_instance`]).
    pub fn check_completeness(&self) -> Result<Option<usize>, CompletenessError> {
        (self.completeness)()
    }

    /// Exhaustive soundness check on the cached engine.
    ///
    /// # Panics
    ///
    /// Panics if the sealed instance is a yes-instance (mirrors
    /// [`crate::harness::check_soundness_exhaustive`]).
    pub fn check_soundness_exhaustive(&self, max_bits: usize) -> Result<Soundness, SoundnessError> {
        (self.soundness)(max_bits)
    }

    /// Seeded adversarial proof search on the cached engine; `Some` is a
    /// soundness violation within the size budget.
    ///
    /// # Panics
    ///
    /// Panics if the sealed instance is a yes-instance (mirrors
    /// [`crate::harness::adversarial_proof_search`]).
    pub fn adversarial_search(
        &self,
        size_budget: usize,
        iterations: usize,
        seed: u64,
    ) -> Option<Proof> {
        (self.adversarial)(size_budget, iterations, seed)
    }

    /// Seeded single-bit tamper probe against the honest proof.
    ///
    /// Returns `None` when there is nothing to probe: the prover refused,
    /// or the honest proof is not fully accepted (a completeness failure,
    /// reported by [`Self::check_completeness`] instead).
    pub fn tamper_probe(&self, trials: usize, seed: u64) -> Option<TamperProbe> {
        (self.tamper)(trials, seed)
    }
}

/// Engine-backed tamper probe: flip one random bit of the honest proof
/// in its arena per trial, re-verify only the views containing the
/// flipped node, and flip the bit back — zero allocations per trial.
fn tamper_probe<S>(
    scheme: &S,
    inst: &Instance<S::Node, S::Edge>,
    trials: usize,
    seed: u64,
) -> Option<TamperProbe>
where
    S: Scheme,
    S::Node: Clone + Send + Sync,
    S::Edge: Clone + Send + Sync,
{
    let mut proof = scheme.prove(inst)?;
    let prep = PreparedInstance::new(inst, scheme.radius());
    if (0..prep.n()).any(|v| !scheme.verify(&prep.bind(v, &proof))) {
        return None; // honest proof rejected — that is a completeness failure
    }
    let flippable: Vec<usize> = (0..prep.n())
        .filter(|&v| !proof.get(v).is_empty())
        .collect();
    let mut probe = TamperProbe::default();
    if flippable.is_empty() {
        return Some(probe); // LCP(0): no bits to tamper with
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..trials {
        let v = flippable[rng.random_range(0..flippable.len())];
        let idx = rng.random_range(0..proof.get(v).len());
        proof.flip(v, idx);
        match prep
            .dependents(v)
            .find(|&o| !scheme.verify(&prep.bind(o, &proof)))
        {
            Some(w) => {
                probe.detected += 1;
                if probe.witness.is_none() {
                    probe.witness = Some(w);
                }
            }
            None => probe.undetected += 1,
        }
        probe.trials += 1;
        proof.flip(v, idx);
    }
    Some(probe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::BitString;
    use crate::view::View;
    use lcp_graph::generators;

    /// The 1-bit bipartiteness scheme (the harness guinea pig again).
    struct Bipartite;
    impl Scheme for Bipartite {
        type Node = ();
        type Edge = ();
        fn name(&self) -> String {
            "bipartite".into()
        }
        fn radius(&self) -> usize {
            1
        }
        fn holds(&self, inst: &Instance) -> bool {
            lcp_graph::traversal::is_bipartite(inst.graph())
        }
        fn prove(&self, inst: &Instance) -> Option<Proof> {
            let colors = lcp_graph::traversal::bipartition(inst.graph())?;
            Some(Proof::from_fn(inst.n(), |v| {
                BitString::from_bits([colors[v] == 1])
            }))
        }
        fn verify(&self, view: &View) -> bool {
            let c = view.center();
            let mine = view.proof(c).first();
            mine.is_some()
                && view
                    .neighbors(c)
                    .iter()
                    .all(|&u| view.proof(u).first().is_some_and(|b| Some(b) != mine))
        }
    }

    #[test]
    fn sealed_cell_matches_direct_calls() {
        let inst = Instance::unlabeled(generators::cycle(6));
        let dyn_cell = DynScheme::seal(Bipartite, Instance::unlabeled(generators::cycle(6)));
        assert_eq!(dyn_cell.name(), "bipartite");
        assert_eq!(dyn_cell.radius(), 1);
        assert_eq!(dyn_cell.n(), 6);
        assert!(dyn_cell.holds());
        let proof = dyn_cell.prove().expect("even cycle provable");
        assert_eq!(proof, Bipartite.prove(&inst).unwrap());
        assert!(dyn_cell.evaluate(&proof).accepted());
        assert_eq!(dyn_cell.evaluate_until_reject(&proof), None);
        assert_eq!(dyn_cell.check_completeness(), Ok(Some(1)));
    }

    #[test]
    fn sealed_soundness_checks_agree_with_harness() {
        let dyn_cell = DynScheme::seal(Bipartite, Instance::unlabeled(generators::cycle(5)));
        assert!(!dyn_cell.holds());
        match dyn_cell.check_soundness_exhaustive(1).unwrap() {
            Soundness::Holds(tried) => assert_eq!(tried, 3u64.pow(5)),
            Soundness::Violated(p) => panic!("odd cycle certified bipartite by {p:?}"),
        }
        assert!(dyn_cell.adversarial_search(1, 400, 9).is_none());
    }

    #[test]
    fn adversarial_seed_is_reproducible() {
        /// Deliberately unsound: accepts iff the centre holds bit 1.
        struct Gullible;
        impl Scheme for Gullible {
            type Node = ();
            type Edge = ();
            fn name(&self) -> String {
                "gullible".into()
            }
            fn radius(&self) -> usize {
                0
            }
            fn holds(&self, _: &Instance) -> bool {
                false
            }
            fn prove(&self, _: &Instance) -> Option<Proof> {
                None
            }
            fn verify(&self, view: &View) -> bool {
                view.proof(view.center()).first() == Some(true)
            }
        }
        let cell = DynScheme::seal(Gullible, Instance::unlabeled(generators::cycle(6)));
        let a = cell.adversarial_search(1, 2000, 42).expect("breakable");
        let b = cell.adversarial_search(1, 2000, 42).expect("breakable");
        assert_eq!(a, b, "same seed, same forged proof");
    }

    #[test]
    fn tamper_probe_detects_flips_on_rigid_proofs() {
        let cell = DynScheme::seal(Bipartite, Instance::unlabeled(generators::cycle(8)));
        let probe = cell.tamper_probe(16, 3).expect("yes-instance probes");
        assert_eq!(probe.trials, 16);
        // Flipping any single colour bit breaks both adjacent constraints.
        assert_eq!(probe.detected, 16);
        assert_eq!(probe.undetected, 0);
        assert!(probe.witness.is_some());
        // Seeded: byte-identical reruns.
        assert_eq!(probe, cell.tamper_probe(16, 3).unwrap());
    }

    #[test]
    fn tamper_probe_handles_empty_proofs_and_no_instances() {
        /// Proofless scheme (LCP(0)).
        struct Trivial;
        impl Scheme for Trivial {
            type Node = ();
            type Edge = ();
            fn name(&self) -> String {
                "trivial".into()
            }
            fn radius(&self) -> usize {
                0
            }
            fn holds(&self, _: &Instance) -> bool {
                true
            }
            fn prove(&self, inst: &Instance) -> Option<Proof> {
                Some(Proof::empty(inst.n()))
            }
            fn verify(&self, _: &View) -> bool {
                true
            }
        }
        let cell = DynScheme::seal(Trivial, Instance::unlabeled(generators::path(4)));
        let probe = cell.tamper_probe(8, 0).unwrap();
        assert_eq!((probe.trials, probe.detected), (0, 0));

        let no = DynScheme::seal(Bipartite, Instance::unlabeled(generators::cycle(5)));
        assert!(
            no.tamper_probe(8, 0).is_none(),
            "prover refuses no-instances"
        );
    }

    #[test]
    fn labelled_schemes_seal_too() {
        struct LeaderIsLabelled;
        impl Scheme for LeaderIsLabelled {
            type Node = bool;
            type Edge = ();
            fn name(&self) -> String {
                "leader-labelled".into()
            }
            fn radius(&self) -> usize {
                0
            }
            fn holds(&self, inst: &Instance<bool>) -> bool {
                inst.node_labels().iter().filter(|&&l| l).count() == 1
            }
            fn prove(&self, inst: &Instance<bool>) -> Option<Proof> {
                self.holds(inst).then(|| Proof::empty(inst.n()))
            }
            fn verify(&self, _: &View<bool>) -> bool {
                true
            }
        }
        let g = generators::path(3);
        let cell = DynScheme::seal(
            LeaderIsLabelled,
            Instance::with_node_data(g, vec![false, true, false]),
        );
        assert!(cell.holds());
        assert_eq!(cell.check_completeness(), Ok(Some(0)));
    }
}
