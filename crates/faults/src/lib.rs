//! # `lcp-faults` — deterministic fault injection for the verification stack
//!
//! The conformance campaign proves the schemes behave; this crate
//! proves the *infrastructure* notices when its own state is damaged.
//! Every experiment plants a seeded fault in a layer the campaign
//! trusts implicitly and asserts the stack either **detects** it (a
//! soundness-style check observes the damage) or **repairs** it (the
//! incremental machinery restores a state indistinguishable from
//! scratch):
//!
//! * [`FaultKind::ArenaBitFlip`] — flip one bit of an honest,
//!   fully-accepted proof in its word-packed storage. The verifier
//!   sweep must reject somewhere (detected); flipping the bit back must
//!   restore acceptance everywhere (repaired).
//! * [`FaultKind::SkeletonCorruption`] — corrupt one cached view
//!   skeleton's CSR adjacency/distances inside a [`SkeletonStore`]. The
//!   store's outputs must diverge from a freshly built store
//!   (detected), and [`SkeletonStore::rebuild`] over the damaged node
//!   must make every view match the fresh build again (repaired).
//! * [`FaultKind::ChurnDrop`] / [`FaultKind::ChurnDuplicate`] /
//!   [`FaultKind::ChurnReorder`] — perturb a valid churn mutation
//!   stream before replaying it into a [`DynamicInstance`]. Structurally
//!   impossible mutations must be refused by `apply` (detected), and
//!   whatever state survives must keep `reverify()` in agreement with
//!   `full_check()` (repaired) — the dirty-ball invariant under a
//!   faulty driver.
//!
//! Everything is seeded ([`run_standard_plan`] is a pure function of
//! its seed): a failing outcome is replayable from the report alone,
//! matching the workspace seed policy. `lcp-campaign --inject-faults`
//! runs the standard plan and exits nonzero if any fault goes both
//! undetected and unrepaired.

use lcp_core::bits::BitString;
use lcp_core::{Instance, Proof, Scheme, SkeletonStore, View};
use lcp_dynamic::churn::{ChurnConfig, ChurnStream};
use lcp_dynamic::{DynamicInstance, Mutation};
use lcp_graph::{generators, traversal, Graph};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt::Write as _;

// ---------------------------------------------------------------------
// Probe schemes
// ---------------------------------------------------------------------

/// The 1-bit bipartiteness scheme (§1.2 of the paper): every flipped
/// colour bit breaks both incident edge constraints, so a single-bit
/// arena fault is always *detectable* — the right probe for storage
/// faults.
struct Bipartite;

impl Scheme for Bipartite {
    type Node = ();
    type Edge = ();
    fn name(&self) -> String {
        "fault-probe-bipartite".into()
    }
    fn radius(&self) -> usize {
        1
    }
    fn holds(&self, inst: &Instance) -> bool {
        traversal::is_bipartite(inst.graph())
    }
    fn prove(&self, inst: &Instance) -> Option<Proof> {
        let colors = traversal::bipartition(inst.graph())?;
        Some(Proof::from_fn(inst.graph().n(), |v| {
            BitString::from_bits([colors[v] == 1])
        }))
    }
    fn verify(&self, view: &View) -> bool {
        let me = view.proof(view.center());
        view.neighbors(view.center())
            .iter()
            .all(|&u| view.proof(u).first() != me.first())
    }
}

/// A radius-2 verifier whose output hashes the *entire* view —
/// membership, distances, adjacency order, proof bits. Any structural
/// skeleton corruption perturbs the hash, so cached-view damage cannot
/// hide from it.
struct Fingerprint;

impl Scheme for Fingerprint {
    type Node = ();
    type Edge = ();
    fn name(&self) -> String {
        "fault-probe-fingerprint".into()
    }
    fn radius(&self) -> usize {
        2
    }
    fn holds(&self, _: &Instance) -> bool {
        true
    }
    fn prove(&self, inst: &Instance) -> Option<Proof> {
        Some(Proof::empty(inst.n()))
    }
    fn verify(&self, view: &View) -> bool {
        let mut h: u64 = view.center() as u64;
        for u in view.nodes() {
            h = h.wrapping_mul(1_000_003).wrapping_add(view.id(u).0);
            h = h.wrapping_mul(31).wrapping_add(view.dist(u) as u64);
            for b in view.proof(u).iter() {
                h = h.wrapping_mul(2).wrapping_add(b as u64);
            }
            for &w in view.neighbors(u) {
                h = h.wrapping_mul(131).wrapping_add(view.id(w).0);
            }
        }
        !h.is_multiple_of(3)
    }
}

// ---------------------------------------------------------------------
// Outcomes
// ---------------------------------------------------------------------

/// The layer a fault was injected into.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// One bit of an honest proof flipped in its packed storage.
    ArenaBitFlip,
    /// One cached view skeleton's CSR adjacency/distances corrupted.
    SkeletonCorruption,
    /// One mutation silently removed from a churn stream.
    ChurnDrop,
    /// One mutation applied twice in a churn stream.
    ChurnDuplicate,
    /// Two adjacent churn mutations applied in swapped order.
    ChurnReorder,
}

impl FaultKind {
    /// Stable lowercase name (report keys).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::ArenaBitFlip => "arena-bit-flip",
            FaultKind::SkeletonCorruption => "skeleton-corruption",
            FaultKind::ChurnDrop => "churn-drop",
            FaultKind::ChurnDuplicate => "churn-duplicate",
            FaultKind::ChurnReorder => "churn-reorder",
        }
    }
}

/// One injected fault and what the stack did about it.
#[derive(Clone, Debug)]
pub struct FaultOutcome {
    /// Which layer was damaged.
    pub kind: FaultKind,
    /// Where (deterministic, human-readable — e.g. `cycle(12) node 5`).
    pub site: String,
    /// A check observed the damage.
    pub detected: bool,
    /// The repair path restored a state indistinguishable from scratch.
    pub repaired: bool,
    /// Deterministic narrative of the experiment.
    pub detail: String,
}

impl FaultOutcome {
    /// A fault is handled when it is detected, repaired, or both; an
    /// unhandled fault is silent corruption — the thing this crate
    /// exists to rule out.
    pub fn handled(&self) -> bool {
        self.detected || self.repaired
    }
}

/// The outcome of a whole fault plan.
#[derive(Clone, Debug)]
pub struct FaultReport {
    /// The plan seed (the report is a pure function of it).
    pub seed: u64,
    /// Every injected fault, in plan order.
    pub outcomes: Vec<FaultOutcome>,
}

impl FaultReport {
    /// Whether every fault was detected or repaired.
    pub fn all_handled(&self) -> bool {
        self.outcomes.iter().all(FaultOutcome::handled)
    }

    /// Outcomes that were neither detected nor repaired.
    pub fn unhandled(&self) -> Vec<&FaultOutcome> {
        self.outcomes.iter().filter(|o| !o.handled()).collect()
    }

    /// Deterministic JSON rendering (same seed → same bytes).
    pub fn to_json(&self) -> String {
        let mut w = String::with_capacity(1 << 12);
        w.push_str("{\n");
        let _ = writeln!(w, "  \"mode\": \"fault-injection\",");
        let _ = writeln!(w, "  \"seed\": {},", self.seed);
        let _ = writeln!(w, "  \"faults\": {},", self.outcomes.len());
        let _ = writeln!(w, "  \"all_handled\": {},", self.all_handled());
        w.push_str("  \"outcomes\": [\n");
        for (i, o) in self.outcomes.iter().enumerate() {
            let _ = write!(
                w,
                "    {{ \"kind\": {}, \"site\": {}, \"detected\": {}, \"repaired\": {}, \
                 \"detail\": {} }}",
                lcp_core::json::escape(o.kind.name()),
                lcp_core::json::escape(&o.site),
                o.detected,
                o.repaired,
                lcp_core::json::escape(&o.detail),
            );
            w.push_str(if i + 1 < self.outcomes.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        w.push_str("  ]\n}\n");
        w
    }
}

// ---------------------------------------------------------------------
// Experiments
// ---------------------------------------------------------------------

/// Flip one seeded bit of the honest bipartition proof and ask the
/// verifier sweep about it; then flip it back.
fn inject_arena_flip(site: &str, g: Graph, rng: &mut StdRng) -> FaultOutcome {
    let inst = Instance::unlabeled(g);
    let scheme = Bipartite;
    assert!(scheme.holds(&inst), "arena probes start from yes-instances");
    let mut proof = scheme.prove(&inst).expect("bipartition exists");
    let store: SkeletonStore = SkeletonStore::new(&inst, scheme.radius());
    let clean = store.evaluate(&scheme, &proof);
    debug_assert!(clean.accepted(), "honest proof accepted before the fault");

    let victim = rng.random_range(0..inst.n());
    proof.flip(victim, 0);
    let corrupted = store.evaluate(&scheme, &proof);
    let detected = !corrupted.accepted();
    let witness = corrupted.rejecting().first().copied();

    proof.flip(victim, 0);
    let repaired = store.evaluate(&scheme, &proof).accepted();

    FaultOutcome {
        kind: FaultKind::ArenaBitFlip,
        site: format!("{site} node {victim} bit 0"),
        detected,
        repaired,
        detail: match witness {
            Some(w) => format!(
                "flipped colour bit rejected (first witness node {w}); restored bit re-accepted: {repaired}"
            ),
            None => "flipped colour bit was accepted everywhere — soundness check missed it".into(),
        },
    }
}

/// Everything a verifier can observe in one bound view: node identity,
/// distance-from-center, and adjacency order. Two stores agree on a
/// node's verification iff these signatures match.
fn view_signature(store: &SkeletonStore, v: usize, proof: &Proof) -> Vec<(u64, usize, Vec<u64>)> {
    let view = store.bind(v, proof);
    view.nodes()
        .map(|u| {
            (
                view.id(u).0,
                view.dist(u),
                view.neighbors(u).iter().map(|&w| view.id(w).0).collect(),
            )
        })
        .collect()
}

/// Corrupt one cached skeleton, compare the store against a fresh
/// build, then let [`SkeletonStore::rebuild`] repair it.
fn inject_skeleton_corruption(site: &str, g: Graph, rng: &mut StdRng) -> FaultOutcome {
    let inst = Instance::unlabeled(g);
    let scheme = Fingerprint;
    let proof = scheme.prove(&inst).expect("fingerprint always proves");
    let fresh: SkeletonStore = SkeletonStore::new(&inst, scheme.radius());
    let mut store: SkeletonStore = SkeletonStore::new(&inst, scheme.radius());

    let victim = rng.random_range(0..inst.n());
    let damage = store.corrupt_skeleton_for_tests(victim);
    let truth = fresh.evaluate(&scheme, &proof);
    // Detection = an integrity sweep comparing what each verifier would
    // see against a fresh build (corruption always perturbs distance or
    // adjacency order, both verifier-visible).
    let detected = (0..inst.n())
        .any(|v| view_signature(&store, v, &proof) != view_signature(&fresh, v, &proof));

    // The repair primitive: rebuild the damaged scope from the (intact)
    // instance, exactly as the incremental engine does after a mutation.
    let changed = store.rebuild(&inst, &[victim]);
    let repaired = (0..inst.n())
        .all(|v| view_signature(&store, v, &proof) == view_signature(&fresh, v, &proof))
        && store.evaluate(&scheme, &proof) == truth;

    FaultOutcome {
        kind: FaultKind::SkeletonCorruption,
        site: format!("{site} node {victim}"),
        detected,
        repaired,
        detail: format!(
            "{damage}; fresh-build divergence observed: {detected}; rebuild touched {} view(s) and restored agreement: {repaired}",
            changed.len()
        ),
    }
}

/// How a churn stream is perturbed before replay.
#[derive(Clone, Copy)]
enum Perturbation {
    Drop,
    Duplicate,
    Reorder,
}

/// Generates a *valid* mutation sequence by driving a pristine twin,
/// perturbs it, replays it into a fresh instance, and checks that every
/// impossible mutation is refused while incremental and from-scratch
/// verification stay in agreement on whatever state results.
fn inject_churn_fault(
    kind: FaultKind,
    perturbation: Perturbation,
    site: &str,
    build: impl Fn() -> Graph,
    steps: usize,
    stream_seed: u64,
    rng: &mut StdRng,
) -> FaultOutcome {
    // The twin records the mutations a faithful driver would apply.
    let mut twin = DynamicInstance::seal(Fingerprint, Instance::unlabeled(build()));
    let mut stream = ChurnStream::new(ChurnConfig::new(stream_seed));
    let mut script: Vec<Mutation> = Vec::with_capacity(steps);
    for _ in 0..steps {
        let Some(m) = stream.propose(&twin) else {
            break;
        };
        if twin.apply(&m).is_ok() {
            script.push(m);
        }
    }
    assert!(
        script.len() >= 2,
        "churn probes need at least two mutations"
    );

    let at = rng.random_range(0..script.len() - 1);
    match perturbation {
        Perturbation::Drop => {
            script.remove(at);
        }
        Perturbation::Duplicate => {
            let m = script[at].clone();
            script.insert(at + 1, m);
        }
        Perturbation::Reorder => {
            script.swap(at, at + 1);
        }
    }

    let mut target = DynamicInstance::seal(Fingerprint, Instance::unlabeled(build()));
    let mut refused = 0usize;
    let mut applied = 0usize;
    for m in &script {
        match target.apply(m) {
            Ok(_) => applied += 1,
            Err(_) => refused += 1,
        }
    }
    let incremental = target.reverify();
    let full = target.full_check();
    // The dirty-ball invariant under a faulty driver: whatever state the
    // perturbed script produced, incremental and from-scratch agree.
    let repaired = incremental.accepted == full.accepted()
        && incremental.witness == full.rejecting().first().copied();

    FaultOutcome {
        kind,
        site: format!("{site} mutation #{at}"),
        detected: refused > 0,
        repaired,
        detail: format!(
            "{applied} of {} perturbed mutations applied, {refused} refused; \
             incremental-vs-full agreement after replay: {repaired}",
            script.len()
        ),
    }
}

/// The standard plan `lcp-campaign --inject-faults` runs: several sites
/// per fault kind, all derived from `seed`. Deterministic — same seed,
/// same [`FaultReport::to_json`] bytes.
pub fn run_standard_plan(seed: u64) -> FaultReport {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xfa_17_5e_ed);
    let mut outcomes = Vec::new();

    for (site, g) in [
        ("cycle(12)", generators::cycle(12)),
        ("path(9)", generators::path(9)),
        ("grid(3,4)", generators::grid(3, 4)),
    ] {
        outcomes.push(inject_arena_flip(site, g, &mut rng));
    }

    for (site, g) in [
        ("grid(3,4)", generators::grid(3, 4)),
        ("cycle(9)", generators::cycle(9)),
    ] {
        outcomes.push(inject_skeleton_corruption(site, g, &mut rng));
    }

    for (kind, perturbation) in [
        (FaultKind::ChurnDrop, Perturbation::Drop),
        (FaultKind::ChurnDuplicate, Perturbation::Duplicate),
        (FaultKind::ChurnReorder, Perturbation::Reorder),
    ] {
        outcomes.push(inject_churn_fault(
            kind,
            perturbation,
            "grid(3,4)",
            || generators::grid(3, 4),
            24,
            seed ^ 0xc0_ffee,
            &mut rng,
        ));
    }

    FaultReport { seed, outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_standard_plan_handles_every_fault() {
        let report = run_standard_plan(7);
        assert!(
            report.all_handled(),
            "unhandled faults: {:?}",
            report.unhandled()
        );
        let kinds: std::collections::HashSet<FaultKind> =
            report.outcomes.iter().map(|o| o.kind).collect();
        assert!(kinds.len() >= 5, "plan must span every fault kind");
    }

    #[test]
    fn arena_flips_are_detected_and_reversible() {
        let report = run_standard_plan(3);
        for o in report
            .outcomes
            .iter()
            .filter(|o| o.kind == FaultKind::ArenaBitFlip)
        {
            assert!(o.detected, "{}: flipped bit must be rejected", o.site);
            assert!(o.repaired, "{}: restored bit must re-accept", o.site);
        }
    }

    #[test]
    fn skeleton_corruption_is_repaired_by_rebuild() {
        let report = run_standard_plan(11);
        for o in report
            .outcomes
            .iter()
            .filter(|o| o.kind == FaultKind::SkeletonCorruption)
        {
            assert!(o.detected, "{}: corruption must diverge from fresh", o.site);
            assert!(o.repaired, "{}: rebuild must restore agreement", o.site);
        }
    }

    #[test]
    fn churn_faults_keep_incremental_and_full_in_agreement() {
        let report = run_standard_plan(5);
        for o in report.outcomes.iter().filter(|o| {
            matches!(
                o.kind,
                FaultKind::ChurnDrop | FaultKind::ChurnDuplicate | FaultKind::ChurnReorder
            )
        }) {
            assert!(o.repaired, "{} ({}): {}", o.site, o.kind.name(), o.detail);
        }
    }

    #[test]
    fn the_plan_is_deterministic() {
        assert_eq!(
            run_standard_plan(7).to_json(),
            run_standard_plan(7).to_json()
        );
        assert_ne!(
            run_standard_plan(7).to_json(),
            run_standard_plan(8).to_json()
        );
    }
}
