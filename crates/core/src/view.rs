//! Local views: the triple `(G[v,r], P[v,r], v)` a verifier sees (§2.1).
//!
//! A [`View`] is *extracted* — a standalone copy of the radius-`r` ball
//! around the centre, with its own dense indices. A verifier receives only
//! the view, so locality is enforced by construction rather than by
//! convention: there is no way to read labels, proofs, or edges beyond the
//! horizon.

use crate::bits::BitString;
use crate::instance::{EdgeMap, Instance};
use crate::proof::Proof;
use lcp_graph::{norm_edge, Graph, NodeId};

/// The radius-`r` view of one node: induced subgraph, identifiers, labels,
/// proof restriction, and the centre.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct View<N = (), E = ()> {
    center: usize,
    radius: usize,
    ids: Vec<NodeId>,
    adj: Vec<Vec<usize>>,
    dist: Vec<usize>,
    node_data: Vec<N>,
    edge_data: EdgeMap<E>,
    proofs: Vec<BitString>,
}

impl<N: Clone, E: Clone> View<N, E> {
    /// Extracts the view `(G[v,r], P[v,r], v)` from an instance.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or `proof.n()` mismatches the graph.
    pub fn extract(inst: &Instance<N, E>, proof: &Proof, v: usize, radius: usize) -> Self {
        let g = inst.graph();
        assert!(v < g.n(), "view centre {v} out of range");
        assert_eq!(proof.n(), g.n(), "proof must label every node");
        let members = lcp_graph::traversal::ball(g, v, radius);
        let mut old_to_new = vec![usize::MAX; g.n()];
        for (new, &old) in members.iter().enumerate() {
            old_to_new[old] = new;
        }
        let mut adj = vec![Vec::new(); members.len()];
        let mut edge_data = EdgeMap::new();
        for (new_u, &old_u) in members.iter().enumerate() {
            for &old_w in g.neighbors(old_u) {
                let new_w = old_to_new[old_w];
                if new_w == usize::MAX {
                    continue; // beyond the horizon
                }
                adj[new_u].push(new_w);
                if new_u < new_w {
                    if let Some(label) = inst.edge_label(old_u, old_w) {
                        edge_data.insert((new_u, new_w), label.clone());
                    }
                }
            }
        }
        // Distances from the centre, measured inside the ball (equal to
        // distances in G for all ball members).
        let dist_in_g = lcp_graph::traversal::bfs_distances(g, v);
        View {
            center: old_to_new[v],
            radius,
            ids: members.iter().map(|&u| g.id(u)).collect(),
            dist: members
                .iter()
                .map(|&u| dist_in_g[u].expect("ball members are reachable"))
                .collect(),
            node_data: members.iter().map(|&u| inst.node_label(u).clone()).collect(),
            proofs: members.iter().map(|&u| proof.get(u).clone()).collect(),
            adj,
            edge_data,
        }
    }
}

impl<N, E> View<N, E> {
    /// Assembles a view from raw parts — the constructor used by the
    /// message-passing simulator in `lcp-sim`, which must build the view
    /// from knowledge a node gathered over `radius` communication rounds.
    ///
    /// All vectors are indexed by view-node index; `adj` lists must be
    /// sorted and symmetric, and `edge_data` keys normalized. Library
    /// users normally want [`View::extract`] instead.
    ///
    /// # Panics
    ///
    /// Panics when lengths disagree, the centre is out of range, adjacency
    /// is unsorted/asymmetric, or a distance exceeds `radius`.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        center: usize,
        radius: usize,
        ids: Vec<NodeId>,
        adj: Vec<Vec<usize>>,
        dist: Vec<usize>,
        node_data: Vec<N>,
        edge_data: EdgeMap<E>,
        proofs: Vec<BitString>,
    ) -> Self {
        let n = ids.len();
        assert!(center < n, "centre out of range");
        assert_eq!(adj.len(), n, "adjacency length mismatch");
        assert_eq!(dist.len(), n, "distance length mismatch");
        assert_eq!(node_data.len(), n, "node data length mismatch");
        assert_eq!(proofs.len(), n, "proof length mismatch");
        assert_eq!(dist[center], 0, "centre must be at distance 0");
        for (u, list) in adj.iter().enumerate() {
            assert!(list.windows(2).all(|w| w[0] < w[1]), "adjacency unsorted");
            for &w in list {
                assert!(w < n, "adjacency index out of range");
                assert!(adj[w].binary_search(&u).is_ok(), "adjacency asymmetric");
            }
        }
        for d in &dist {
            assert!(*d <= radius, "distance beyond radius");
        }
        for &(u, w) in edge_data.keys() {
            assert!(u <= w && adj[u].binary_search(&w).is_ok(), "edge label off-edge");
        }
        View {
            center,
            radius,
            ids,
            adj,
            dist,
            node_data,
            edge_data,
            proofs,
        }
    }

    /// The centre's index *within the view*.
    pub fn center(&self) -> usize {
        self.center
    }

    /// The extraction radius `r`.
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// Number of nodes in the view.
    pub fn n(&self) -> usize {
        self.ids.len()
    }

    /// Identifier of view node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn id(&self, u: usize) -> NodeId {
        self.ids[u]
    }

    /// All identifiers in view-index order.
    pub fn ids(&self) -> &[NodeId] {
        &self.ids
    }

    /// View index of the node with identifier `id`, if visible.
    pub fn index_of(&self, id: NodeId) -> Option<usize> {
        self.ids.iter().position(|&x| x == id)
    }

    /// Distance from the centre (in the original graph, ≤ radius).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn dist(&self, u: usize) -> usize {
        self.dist[u]
    }

    /// Sorted neighbours of `u` within the view.
    ///
    /// Note: for `u` at distance exactly `r` this can be a strict subset
    /// of its true neighbourhood — exactly as in the paper's `G[v,r]`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn neighbors(&self, u: usize) -> &[usize] {
        &self.adj[u]
    }

    /// Degree of `u` within the view.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// Whether `{u, w}` is an edge of the view.
    pub fn has_edge(&self, u: usize, w: usize) -> bool {
        u < self.n() && w < self.n() && self.adj[u].binary_search(&w).is_ok()
    }

    /// Iterates over view node indices.
    pub fn nodes(&self) -> std::ops::Range<usize> {
        0..self.n()
    }

    /// All view edges as normalized pairs.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for u in self.nodes() {
            for &w in &self.adj[u] {
                if u < w {
                    out.push((u, w));
                }
            }
        }
        out
    }

    /// The node label of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn node_label(&self, u: usize) -> &N {
        &self.node_data[u]
    }

    /// The edge label of `{u, w}` within the view, if present.
    pub fn edge_label(&self, u: usize, w: usize) -> Option<&E> {
        self.edge_data.get(&norm_edge(u, w))
    }

    /// The proof string of `u` (the restriction `P[v,r]`).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn proof(&self, u: usize) -> &BitString {
        &self.proofs[u]
    }

    /// Restricts the view to a smaller radius `r' ≤ r`, producing the
    /// view `(G[v,r'], P[v,r'], v)` a shorter-horizon verifier would see.
    ///
    /// Used by scheme *combinators* — e.g. the §7.3 complement adapter
    /// simulates an inner radius-`r'` verifier at the root of its
    /// spanning tree.
    ///
    /// # Panics
    ///
    /// Panics if `new_radius` exceeds the current radius.
    pub fn restrict(&self, new_radius: usize) -> Self
    where
        N: Clone,
        E: Clone,
    {
        assert!(
            new_radius <= self.radius,
            "cannot widen a view ({new_radius} > {})",
            self.radius
        );
        let keep: Vec<usize> = self.nodes().filter(|&u| self.dist[u] <= new_radius).collect();
        let mut old_to_new = vec![usize::MAX; self.n()];
        for (new, &old) in keep.iter().enumerate() {
            old_to_new[old] = new;
        }
        let mut adj = vec![Vec::new(); keep.len()];
        let mut edge_data = EdgeMap::new();
        for (nu, &ou) in keep.iter().enumerate() {
            for &ow in &self.adj[ou] {
                let nw = old_to_new[ow];
                if nw == usize::MAX {
                    continue;
                }
                adj[nu].push(nw);
                if nu < nw {
                    if let Some(l) = self.edge_label(ou, ow) {
                        edge_data.insert((nu, nw), l.clone());
                    }
                }
            }
        }
        for list in &mut adj {
            list.sort_unstable();
        }
        View {
            center: old_to_new[self.center],
            radius: new_radius,
            ids: keep.iter().map(|&u| self.ids[u]).collect(),
            dist: keep.iter().map(|&u| self.dist[u]).collect(),
            node_data: keep.iter().map(|&u| self.node_data[u].clone()).collect(),
            proofs: keep.iter().map(|&u| self.proofs[u].clone()).collect(),
            adj,
            edge_data,
        }
    }

    /// A copy of the view with every proof string blanked to `ε` — what an
    /// inner `LCP(0)` verifier must be shown (§7.3 simulates the inner
    /// verifier "with the empty proof").
    pub fn with_proofs_cleared(&self) -> Self
    where
        N: Clone,
        E: Clone,
    {
        let mut v = self.clone();
        for p in &mut v.proofs {
            *p = BitString::new();
        }
        v
    }

    /// Materializes the view's topology as a standalone [`Graph`]
    /// (same identifiers), so graph algorithms can run on it.
    pub fn to_graph(&self) -> Graph {
        let mut g = Graph::from_ids(self.ids.iter().copied()).expect("view ids are unique");
        for (u, w) in self.edges() {
            g.add_edge(u, w).expect("view is simple");
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcp_graph::generators;

    fn proof_of_ids(g: &Graph) -> Proof {
        Proof::from_fn(g.n(), |v| {
            let mut w = crate::bits::BitWriter::new();
            w.write_gamma(g.id(v).0);
            w.finish()
        })
    }

    #[test]
    fn radius_zero_view_is_lonely() {
        let g = generators::cycle(5);
        let inst = Instance::unlabeled(g);
        let v = View::extract(&inst, &Proof::empty(5), 2, 0);
        assert_eq!(v.n(), 1);
        assert_eq!(v.center(), 0);
        assert_eq!(v.degree(0), 0);
        assert_eq!(v.id(0), NodeId(3));
    }

    #[test]
    fn radius_one_view_of_cycle() {
        let g = generators::cycle(6);
        let inst = Instance::unlabeled(g);
        let v = View::extract(&inst, &Proof::empty(6), 0, 1);
        assert_eq!(v.n(), 3);
        assert_eq!(v.dist(v.center()), 0);
        // Centre sees both neighbours, which are not adjacent to each other.
        assert_eq!(v.degree(v.center()), 2);
        let others: Vec<usize> = v.nodes().filter(|&u| u != v.center()).collect();
        assert!(!v.has_edge(others[0], others[1]));
        // Boundary nodes have visible degree 1 (their far edges are hidden).
        assert_eq!(v.degree(others[0]), 1);
    }

    #[test]
    fn view_on_triangle_sees_closing_edge() {
        let g = generators::cycle(3);
        let inst = Instance::unlabeled(g);
        let v = View::extract(&inst, &Proof::empty(3), 0, 1);
        assert_eq!(v.n(), 3);
        assert_eq!(v.edges().len(), 3, "induced view includes the far edge");
    }

    #[test]
    fn proofs_and_ids_restricted_consistently() {
        let g = generators::path(7);
        let p = proof_of_ids(&g);
        let inst = Instance::unlabeled(g);
        let v = View::extract(&inst, &p, 3, 2);
        assert_eq!(v.n(), 5);
        for u in v.nodes() {
            let mut r = crate::bits::BitReader::new(v.proof(u));
            assert_eq!(r.read_gamma().unwrap(), v.id(u).0, "proof follows node");
        }
    }

    #[test]
    fn labels_travel_with_the_view() {
        let g = generators::path(4);
        let inst: Instance<u8> = Instance::with_node_data(g, vec![0u8, 1, 2, 3]);
        let v = View::extract(&inst, &Proof::empty(4), 1, 1);
        let idx2 = v.index_of(NodeId(3)).unwrap(); // node index 2 has id 3
        assert_eq!(*v.node_label(idx2), 2);
    }

    #[test]
    fn edge_labels_restricted_to_view() {
        let g = generators::path(5); // 0-1-2-3-4
        let inst = Instance::unlabeled(g).with_edge_set([(0, 1), (3, 4)]);
        let v = View::extract(&inst, &Proof::empty(5), 1, 1);
        // View holds nodes 0,1,2; edge (0,1) labelled, (3,4) invisible.
        let i0 = v.index_of(NodeId(1)).unwrap();
        let i1 = v.index_of(NodeId(2)).unwrap();
        assert!(v.edge_label(i0, i1).is_some());
        assert_eq!(v.n(), 3);
    }

    #[test]
    fn distances_match_original_graph() {
        let g = generators::grid(3, 3);
        let inst = Instance::unlabeled(g);
        let v = View::extract(&inst, &Proof::empty(9), 4, 2);
        assert_eq!(v.n(), 9);
        for u in v.nodes() {
            assert!(v.dist(u) <= 2);
        }
        assert_eq!(v.dist(v.center()), 0);
    }

    #[test]
    fn to_graph_matches_view_topology() {
        let g = generators::complete(4);
        let inst = Instance::unlabeled(g);
        let v = View::extract(&inst, &Proof::empty(4), 0, 1);
        let h = v.to_graph();
        assert_eq!(h.n(), 4);
        assert_eq!(h.m(), 6);
    }
}
