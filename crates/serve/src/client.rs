//! A small blocking client for the `lcp-serve` protocol — the substrate
//! of the integration tests, the `serve_session` example, and the
//! `serve_bench` latency harness.

use crate::protocol::{read_frame, write_frame, CellCoord, WireMutation};
use lcp_core::json::Json;
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed.
    Io(io::Error),
    /// The server closed the connection before answering (e.g. during a
    /// drain).
    Closed,
    /// The server answered `"ok": false`.
    Protocol {
        /// The stable error kind (a `protocol::ERR_*` value).
        kind: String,
        /// Human-readable detail.
        detail: String,
    },
    /// The response frame was not the JSON envelope the protocol
    /// promises.
    Malformed(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Closed => write!(f, "connection closed by the server"),
            ClientError::Protocol { kind, detail } => write!(f, "{kind}: {detail}"),
            ClientError::Malformed(detail) => write!(f, "malformed response: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// The protocol error kind, when this is a typed server error.
    pub fn kind(&self) -> Option<&str> {
        match self {
            ClientError::Protocol { kind, .. } => Some(kind),
            _ => None,
        }
    }
}

/// One blocking connection to a daemon; requests run strictly
/// in order (the protocol has no pipelining).
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects (with `TCP_NODELAY`, so mutate round-trips stay
    /// sub-millisecond).
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Sends one raw request payload and returns the parsed `"ok":
    /// true` response object.
    ///
    /// # Errors
    ///
    /// [`ClientError::Protocol`] for typed server errors,
    /// [`ClientError::Closed`] when the server hung up first.
    pub fn request(&mut self, payload: &str) -> Result<Json, ClientError> {
        write_frame(&mut self.stream, payload)?;
        self.read_response()
    }

    /// Reads one response frame without sending anything — e.g. the
    /// busy error an overloaded acceptor writes on its own.
    ///
    /// # Errors
    ///
    /// Same as [`Self::request`].
    pub fn read_response(&mut self) -> Result<Json, ClientError> {
        let payload = read_frame(&mut self.stream, &|| false)?.ok_or(ClientError::Closed)?;
        let doc = Json::parse(&payload).map_err(|e| ClientError::Malformed(e.to_string()))?;
        match doc.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(doc),
            Some(false) => Err(ClientError::Protocol {
                kind: doc
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
                detail: doc
                    .get("detail")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
            }),
            None => Err(ClientError::Malformed("response without \"ok\"".into())),
        }
    }

    /// `prepare`: materialize + warm a cell.
    ///
    /// # Errors
    ///
    /// See [`Self::request`].
    pub fn prepare(&mut self, coord: &CellCoord) -> Result<Json, ClientError> {
        self.request(&format!("{{\"op\":\"prepare\",{}}}", coord.render_fields()))
    }

    /// `verify`: full verdict on a resident cell, optionally budgeted.
    ///
    /// # Errors
    ///
    /// See [`Self::request`].
    pub fn verify(
        &mut self,
        coord: &CellCoord,
        budget_ms: Option<u64>,
    ) -> Result<Json, ClientError> {
        let budget = match budget_ms {
            Some(ms) => format!(",\"budget_ms\":{ms}"),
            None => String::new(),
        };
        self.request(&format!(
            "{{\"op\":\"verify\",{}{}}}",
            coord.render_fields(),
            budget
        ))
    }

    /// `tamper-probe`: seeded single-bit flips on the honest proof.
    ///
    /// # Errors
    ///
    /// See [`Self::request`].
    pub fn tamper_probe(
        &mut self,
        coord: &CellCoord,
        trials: usize,
        seed: u64,
    ) -> Result<Json, ClientError> {
        self.request(&format!(
            "{{\"op\":\"tamper-probe\",{},\"trials\":{trials},\"seed\":{seed}}}",
            coord.render_fields()
        ))
    }

    /// `stats`: instance-table and skeleton-cache counters.
    ///
    /// # Errors
    ///
    /// See [`Self::request`].
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.request("{\"op\":\"stats\"}")
    }

    /// `metrics`: Prometheus-style text export of the daemon's whole
    /// metric registry, decoded from the response envelope.
    ///
    /// # Errors
    ///
    /// See [`Self::request`]; additionally
    /// [`ClientError::Malformed`] when the envelope lacks the text
    /// `"body"`.
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        let doc = self.request("{\"op\":\"metrics\"}")?;
        doc.get("body")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ClientError::Malformed("metrics response without \"body\"".into()))
    }

    /// `session-open`: start a churn session on this connection.
    ///
    /// # Errors
    ///
    /// See [`Self::request`].
    pub fn session_open(&mut self, coord: &CellCoord) -> Result<Json, ClientError> {
        self.request(&format!(
            "{{\"op\":\"session-open\",{}}}",
            coord.render_fields()
        ))
    }

    /// `mutate`: apply one mutation in the session, get the incremental
    /// verdict.
    ///
    /// # Errors
    ///
    /// See [`Self::request`].
    pub fn mutate(&mut self, mutation: &WireMutation) -> Result<Json, ClientError> {
        self.request(&format!(
            "{{\"op\":\"mutate\",{}}}",
            mutation.render_fields()
        ))
    }

    /// `churn`: run a seeded mutation stream inside the session.
    ///
    /// # Errors
    ///
    /// See [`Self::request`].
    pub fn churn(
        &mut self,
        seed: u64,
        steps: usize,
        check_every: usize,
    ) -> Result<Json, ClientError> {
        self.request(&format!(
            "{{\"op\":\"churn\",\"seed\":{seed},\"steps\":{steps},\"check_every\":{check_every}}}"
        ))
    }

    /// `session-close`: drop this connection's session.
    ///
    /// # Errors
    ///
    /// See [`Self::request`].
    pub fn session_close(&mut self) -> Result<Json, ClientError> {
        self.request("{\"op\":\"session-close\"}")
    }

    /// `shutdown`: ask the daemon to drain and exit.
    ///
    /// # Errors
    ///
    /// See [`Self::request`].
    pub fn shutdown(&mut self) -> Result<Json, ClientError> {
        self.request("{\"op\":\"shutdown\"}")
    }
}
