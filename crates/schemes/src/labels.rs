//! Shared input-label types for the labelled problems of Table 1.

use lcp_core::frozen::{PortableLabel, WordReader};

/// Node marks for the `s`–`t` problems of §4: the promise is exactly one
/// `S` and one `T` node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum StMark {
    /// The source `s`.
    S,
    /// The target `t`.
    T,
    /// Any other node.
    #[default]
    Plain,
}

impl StMark {
    /// Builds the standard mark vector with `s` and `t` at the given
    /// indices.
    ///
    /// # Panics
    ///
    /// Panics if `s == t` or either is out of range.
    pub fn mark(n: usize, s: usize, t: usize) -> Vec<StMark> {
        assert!(s < n && t < n && s != t, "invalid s/t marks");
        (0..n)
            .map(|v| {
                if v == s {
                    StMark::S
                } else if v == t {
                    StMark::T
                } else {
                    StMark::Plain
                }
            })
            .collect()
    }
}

// Artifact codecs: tags 100+ are reserved for scheme-crate label types
// (`docs/FORMAT.md`). Wire values are frozen — changing them orphans
// every artifact written with the old ones.
impl PortableLabel for StMark {
    const TAG: u64 = 100;

    fn encode(&self, out: &mut Vec<u64>) {
        out.push(match self {
            StMark::S => 0,
            StMark::T => 1,
            StMark::Plain => 2,
        });
    }

    fn decode(r: &mut WordReader<'_>) -> Option<Self> {
        match r.next()? {
            0 => Some(StMark::S),
            1 => Some(StMark::T),
            2 => Some(StMark::Plain),
            _ => None,
        }
    }
}

/// Orientation labels modelling a *directed* graph on the undirected
/// substrate: each edge carries the direction(s) in which it may be
/// traversed, expressed relative to node **identifiers** (the only
/// globally meaningful ordering a local verifier can see).
///
/// §4.1's directed `s`–`t` unreachability runs on instances labelled this
/// way, keeping the whole workspace on one graph representation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ArcDir {
    /// Arc from the smaller-identifier endpoint to the larger.
    Forward,
    /// Arc from the larger-identifier endpoint to the smaller.
    Backward,
    /// Arcs in both directions.
    Both,
}

impl ArcDir {
    /// Whether the labelled edge may be traversed from the endpoint with
    /// identifier `from` to the endpoint with identifier `to`.
    pub fn allows(self, from: lcp_graph::NodeId, to: lcp_graph::NodeId) -> bool {
        match self {
            ArcDir::Both => true,
            ArcDir::Forward => from < to,
            ArcDir::Backward => from > to,
        }
    }
}

impl PortableLabel for ArcDir {
    const TAG: u64 = 101;

    fn encode(&self, out: &mut Vec<u64>) {
        out.push(match self {
            ArcDir::Forward => 0,
            ArcDir::Backward => 1,
            ArcDir::Both => 2,
        });
    }

    fn decode(r: &mut WordReader<'_>) -> Option<Self> {
        match r.next()? {
            0 => Some(ArcDir::Forward),
            1 => Some(ArcDir::Backward),
            2 => Some(ArcDir::Both),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_places_s_and_t() {
        let m = StMark::mark(4, 1, 3);
        assert_eq!(m, vec![StMark::Plain, StMark::S, StMark::Plain, StMark::T]);
    }

    #[test]
    #[should_panic(expected = "invalid s/t marks")]
    fn mark_rejects_equal_endpoints() {
        let _ = StMark::mark(4, 2, 2);
    }

    #[test]
    fn arc_direction_semantics() {
        use lcp_graph::NodeId;
        let (a, b) = (NodeId(1), NodeId(5));
        assert!(ArcDir::Forward.allows(a, b));
        assert!(!ArcDir::Forward.allows(b, a));
        assert!(ArcDir::Backward.allows(b, a));
        assert!(!ArcDir::Backward.allows(a, b));
        assert!(ArcDir::Both.allows(a, b) && ArcDir::Both.allows(b, a));
    }
}
