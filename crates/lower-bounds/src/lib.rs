//! # `lcp-lower-bounds` — the paper's lower bounds as executable attacks
//!
//! The lower-bound proofs of §5 and §6 are all of one shape: find two
//! yes-instances whose proofs *collide* on a small window, cut-and-paste
//! them into a no-instance whose every local view matches one of the
//! donors, and watch the verifier accept. This crate runs that argument
//! against *concrete* [`lcp_core::Scheme`] objects:
//!
//! * [`gluing`] — §5.3 / Figure 1: glue `k` compatible `n`-cycles into a
//!   `kn`-cycle. Kills `o(log n)`-bit schemes for odd `n(G)`, leader
//!   election, spanning trees, non-bipartiteness, maximum matchings on
//!   cycles.
//! * [`join_collision`] — §6.1 / §6.2: join two asymmetric graphs (or
//!   rooted trees) by a path; a window collision merges `G₁⊙G₁` and
//!   `G₂⊙G₂` into the asymmetric `G₁⊙G₂`. Kills `o(n²)`-bit symmetry
//!   schemes and `o(n)`-bit tree-symmetry schemes.
//! * [`fooling`] — §6.3: 3-colouring gadget graphs `G_A` joined by
//!   colour-propagating wires; a wire-window collision between
//!   `G_{A,Ā}` and `G_{B,B̄}` yields the 3-colourable-but-accepted
//!   `G_{A,B̄}`. Kills sub-brute-force schemes for non-3-colourability.
//! * [`strawman`] — honest-but-undersized schemes (constant-size parity
//!   counters, truncated universal encodings) that are *complete* and
//!   locally plausible, so the attacks have something real to break;
//!   the genuine `Θ(log n)` / `Θ(n²)` schemes of `lcp-schemes` resist
//!   the very same attacks.
//!
//! Every attack returns a structured outcome: either a
//! [`CounterExample`] — a genuine no-instance together with a stitched
//! proof accepted by **every** node — or a structured explanation of why
//! the scheme survived (typically: its proofs are too large for a window
//! collision, which is the empirical face of the upper bound).

pub mod fooling;
pub mod gluing;
pub mod join_collision;
pub mod strawman;

use lcp_core::{Instance, Proof, Verdict};

/// A successful attack: a no-instance whose stitched proof every node
/// accepts.
#[derive(Clone, Debug)]
pub struct CounterExample<N = (), E = ()> {
    /// The forged no-instance.
    pub instance: Instance<N, E>,
    /// The cut-and-pasted proof.
    pub proof: Proof,
    /// The all-accepting verdict (kept for inspection).
    pub verdict: Verdict,
}

impl<N, E> CounterExample<N, E> {
    /// Size of the forged instance.
    pub fn n(&self) -> usize {
        self.instance.n()
    }
}
