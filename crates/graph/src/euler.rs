//! Eulerian graphs — the paper's first example of a locally checkable
//! property (§1.1).
//!
//! A connected graph is Eulerian iff every degree is even; the "every
//! degree is even" part is what a radius-0 verifier checks, and the
//! connectivity is the family promise `F` = connected graphs.

use crate::Graph;

/// Whether every node of `g` has even degree.
///
/// This is the locally checkable part of the Eulerian property: a
/// radius-0 verifier at `v` outputs `degree(v) % 2 == 0`.
pub fn all_degrees_even(g: &Graph) -> bool {
    g.nodes().all(|u| g.degree(u).is_multiple_of(2))
}

/// Whether `g` is Eulerian: connected with every degree even (the closed
/// Eulerian-circuit convention; the empty graph counts as Eulerian).
pub fn is_eulerian(g: &Graph) -> bool {
    all_degrees_even(g) && crate::traversal::is_connected(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn cycles_are_eulerian() {
        for n in 3..8 {
            assert!(is_eulerian(&generators::cycle(n)));
        }
    }

    #[test]
    fn paths_are_not_eulerian() {
        assert!(!is_eulerian(&generators::path(4)));
        assert!(!all_degrees_even(&generators::path(4)));
    }

    #[test]
    fn k5_is_eulerian_k4_is_not() {
        assert!(is_eulerian(&generators::complete(5)));
        assert!(!is_eulerian(&generators::complete(4)));
    }

    #[test]
    fn disconnected_even_degrees_not_eulerian() {
        let g = crate::ops::disjoint_union(
            &generators::cycle(3),
            &crate::ops::shift_ids(&generators::cycle(3), 10),
        )
        .unwrap();
        assert!(all_degrees_even(&g));
        assert!(!is_eulerian(&g));
    }

    #[test]
    fn empty_graph_is_eulerian() {
        assert!(is_eulerian(&Graph::new()));
    }
}
