//! End-to-end coverage for `bench_diff`'s tolerance and failure paths:
//! a missing committed baseline and a committed snapshot predating a
//! `--keys` series must *pass* (exit 0, "no baseline"), while a broken
//! fresh snapshot or a real regression must fail (exit 1 / 2).

use std::process::{Command, Output};

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("lcp-bench-diff-{}-{name}", std::process::id()));
    p
}

fn write(name: &str, text: &str) -> std::path::PathBuf {
    let p = tmp(name);
    std::fs::write(&p, text).unwrap();
    p
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bench_diff"))
        .args(args)
        .output()
        .expect("bench_diff spawns")
}

const FRESH: &str = r#"{ "naive_seconds": 10.0, "engine_seconds": 1.0 }"#;

#[test]
fn a_missing_committed_baseline_passes_with_a_note() {
    let fresh = write("fresh-a.json", FRESH);
    let missing = tmp("never-written.json");
    let out = run(&[fresh.to_str().unwrap(), missing.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("no baseline"),
        "tolerance is explicit: {stdout}"
    );
    let _ = std::fs::remove_file(fresh);
}

#[test]
fn a_committed_snapshot_predating_a_keys_series_passes_that_series() {
    // The committed snapshot has the default series but not the new
    // one: the old series is still guarded, the new one is tolerated.
    let fresh = write(
        "fresh-b.json",
        r#"{ "naive_seconds": 10.0, "engine_seconds": 1.0, "new_slow": 8.0, "new_fast": 2.0 }"#,
    );
    let committed = write("committed-b.json", FRESH);
    let out = run(&[
        fresh.to_str().unwrap(),
        committed.to_str().unwrap(),
        "--keys",
        "naive_seconds,engine_seconds",
        "--keys",
        "new_slow,new_fast",
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("no baseline for this series"),
        "the unguarded series is called out: {stdout}"
    );
    assert!(
        stdout.contains("engine_seconds:"),
        "the guarded series is still diffed: {stdout}"
    );
    let _ = std::fs::remove_file(fresh);
    let _ = std::fs::remove_file(committed);
}

#[test]
fn a_fresh_snapshot_missing_a_requested_key_is_an_error() {
    let fresh = write("fresh-c.json", r#"{ "naive_seconds": 10.0 }"#);
    let committed = write("committed-c.json", FRESH);
    let out = run(&[fresh.to_str().unwrap(), committed.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("engine_seconds"),
        "missing key named: {stderr}"
    );
    let _ = std::fs::remove_file(fresh);
    let _ = std::fs::remove_file(committed);
}

#[test]
fn an_unreadable_fresh_snapshot_is_an_error_even_without_a_baseline() {
    let out = run(&[
        tmp("no-fresh.json").to_str().unwrap(),
        tmp("no-committed.json").to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
}

#[test]
fn a_regression_beyond_the_allowance_fails_with_exit_2() {
    // Committed speedup 10x, fresh 5x: a 50% loss against a 25% budget.
    let fresh = write(
        "fresh-d.json",
        r#"{ "naive_seconds": 10.0, "engine_seconds": 2.0 }"#,
    );
    let committed = write("committed-d.json", FRESH);
    let out = run(&[fresh.to_str().unwrap(), committed.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("regressed"), "{stderr}");

    // The same numbers under a generous allowance pass.
    let out = run(&[
        fresh.to_str().unwrap(),
        committed.to_str().unwrap(),
        "--max-regression",
        "0.6",
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let _ = std::fs::remove_file(fresh);
    let _ = std::fs::remove_file(committed);
}
