//! Instances: a graph plus optional node and edge labels.
//!
//! §2 allows nodes and edges to carry weights, colours, labels, etc., and
//! §2.3 extends verification to *solutions of graph problems* encoded as
//! labellings (e.g. "edges with label 1 induce a spanning tree").
//! [`Instance`] bundles a graph with per-node data `N` and per-edge data
//! `E`; pure graph properties use `N = E = ()` with an empty edge map.

use lcp_graph::{norm_edge, Graph, GraphError};
use std::collections::BTreeMap;

/// Edge labelling keyed by normalized index pairs; *presence* in the map
/// is itself information (e.g. membership in a matching with `E = ()`).
pub type EdgeMap<E> = BTreeMap<(usize, usize), E>;

/// An input to a proof labelling scheme: graph + node labels + edge
/// labels.
///
/// ```
/// use lcp_core::Instance;
/// use lcp_graph::generators;
///
/// // A maximal-matching instance: the solution is the edge subset.
/// let g = generators::path(4);
/// let inst = Instance::unlabeled(g).with_edge_set([(1, 2)]);
/// assert!(inst.edge_label(2, 1).is_some());
/// assert!(inst.edge_label(0, 1).is_none());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Instance<N = (), E = ()> {
    graph: Graph,
    node_data: Vec<N>,
    edge_data: EdgeMap<E>,
}

impl Instance<(), ()> {
    /// An instance with no labels at all (a pure graph property input).
    pub fn unlabeled(graph: Graph) -> Self {
        let n = graph.n();
        Instance {
            graph,
            node_data: vec![(); n],
            edge_data: EdgeMap::new(),
        }
    }

    /// Adds a unit edge label to every listed edge (order-insensitive);
    /// the usual encoding of an edge-subset solution.
    ///
    /// # Panics
    ///
    /// Panics if a pair is not an edge of the graph.
    pub fn with_edge_set<I>(mut self, edges: I) -> Self
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        for (u, v) in edges {
            assert!(self.graph.has_edge(u, v), "({u}, {v}) is not an edge");
            self.edge_data.insert(norm_edge(u, v), ());
        }
        self
    }
}

impl<N, E> Instance<N, E> {
    /// Builds an instance with explicit per-node data.
    ///
    /// # Panics
    ///
    /// Panics if `node_data.len() != graph.n()`.
    pub fn with_node_data(graph: Graph, node_data: Vec<N>) -> Self {
        assert_eq!(
            node_data.len(),
            graph.n(),
            "one node datum per node required"
        );
        Instance {
            graph,
            node_data,
            edge_data: EdgeMap::new(),
        }
    }

    /// Builds an instance with node and edge data.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch or an edge key is not an edge.
    pub fn with_data(graph: Graph, node_data: Vec<N>, edge_data: EdgeMap<E>) -> Self {
        assert_eq!(node_data.len(), graph.n(), "one node datum per node");
        for &(u, v) in edge_data.keys() {
            assert!(graph.has_edge(u, v), "({u}, {v}) is not an edge");
            assert!(u <= v, "edge keys must be normalized");
        }
        Instance {
            graph,
            node_data,
            edge_data,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of nodes (`n(G)`).
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// The label of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn node_label(&self, v: usize) -> &N {
        &self.node_data[v]
    }

    /// All node labels in index order.
    pub fn node_labels(&self) -> &[N] {
        &self.node_data
    }

    /// The label of edge `{u, v}`, if present.
    pub fn edge_label(&self, u: usize, v: usize) -> Option<&E> {
        self.edge_data.get(&norm_edge(u, v))
    }

    /// The whole edge labelling.
    pub fn edge_labels(&self) -> &EdgeMap<E> {
        &self.edge_data
    }

    /// The labelled edge set as normalized pairs (for `E`-as-subset uses).
    pub fn labelled_edges(&self) -> Vec<(usize, usize)> {
        self.edge_data.keys().copied().collect()
    }

    // -----------------------------------------------------------------
    // Mutation (dynamic-graph workloads)
    // -----------------------------------------------------------------
    //
    // Instances are mutated through these targeted operations instead of
    // a raw `&mut Graph` accessor so the labelling invariants (one node
    // datum per node, edge labels only on edges) cannot be broken.

    /// Inserts the undirected edge `{u, v}` (unlabelled).
    ///
    /// # Errors
    ///
    /// Rejects out-of-range indices, self-loops, and duplicate edges.
    pub fn insert_edge(&mut self, u: usize, v: usize) -> Result<(), GraphError> {
        self.graph.add_edge(u, v)
    }

    /// Removes the undirected edge `{u, v}`, dropping its label (if any)
    /// with it.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range indices and absent edges; the edge labelling
    /// is untouched on error.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> Result<(), GraphError> {
        self.graph.remove_edge(u, v)?;
        self.edge_data.remove(&norm_edge(u, v));
        Ok(())
    }

    /// Replaces the label of node `v`, returning the previous label.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn set_node_label(&mut self, v: usize, label: N) -> N {
        std::mem::replace(&mut self.node_data[v], label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcp_graph::generators;

    #[test]
    fn unlabeled_instance() {
        let inst = Instance::unlabeled(generators::cycle(4));
        assert_eq!(inst.n(), 4);
        assert!(inst.edge_labels().is_empty());
        assert_eq!(*inst.node_label(2), ());
    }

    #[test]
    fn edge_set_normalizes_keys() {
        let inst = Instance::unlabeled(generators::path(3)).with_edge_set([(1, 0)]);
        assert!(inst.edge_label(0, 1).is_some());
        assert!(inst.edge_label(1, 0).is_some());
        assert_eq!(inst.labelled_edges(), vec![(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "is not an edge")]
    fn edge_set_validates() {
        let _ = Instance::unlabeled(generators::path(3)).with_edge_set([(0, 2)]);
    }

    #[test]
    fn node_data_roundtrip() {
        let inst: Instance<u32> =
            Instance::with_node_data(generators::path(3), vec![10u32, 20, 30]);
        assert_eq!(*inst.node_label(1), 20);
        assert_eq!(inst.node_labels(), &[10, 20, 30]);
    }

    #[test]
    #[should_panic(expected = "one node datum per node")]
    fn node_data_length_checked() {
        let _: Instance<u8> = Instance::with_node_data(generators::path(3), vec![1u8]);
    }

    #[test]
    fn edge_mutations_keep_labelling_invariants() {
        let mut inst = Instance::unlabeled(generators::path(4)).with_edge_set([(1, 2)]);
        // Removing a labelled edge drops its label with it.
        inst.remove_edge(2, 1).unwrap();
        assert!(inst.edge_label(1, 2).is_none());
        assert_eq!(inst.graph().m(), 2);
        // Re-inserting yields an unlabelled edge.
        inst.insert_edge(1, 2).unwrap();
        assert!(inst.edge_label(1, 2).is_none());
        assert_eq!(inst.graph().m(), 3);
        // Failed mutations leave everything intact.
        assert!(inst.insert_edge(1, 2).is_err());
        assert!(inst.remove_edge(0, 3).is_err());
        assert_eq!(inst.graph().m(), 3);
    }

    #[test]
    fn node_labels_swap_in_place() {
        let mut inst: Instance<u32> =
            Instance::with_node_data(generators::path(3), vec![10u32, 20, 30]);
        assert_eq!(inst.set_node_label(1, 99), 20);
        assert_eq!(inst.node_labels(), &[10, 99, 30]);
    }

    #[test]
    fn with_data_accepts_weights() {
        let mut weights = EdgeMap::new();
        weights.insert((0, 1), 7u64);
        let inst = Instance::with_data(generators::path(3), vec![(), (), ()], weights);
        assert_eq!(inst.edge_label(0, 1), Some(&7));
        assert_eq!(inst.edge_label(1, 2), None);
    }
}
