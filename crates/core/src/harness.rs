//! Conformance harness: turning the model's quantifiers into executable
//! checks.
//!
//! * `∀` yes-instances, the honest proof is accepted — [`check_completeness`].
//! * `∀` proofs of a no-instance, some node rejects — decided exactly by
//!   [`check_soundness_exhaustive`] on small instances, and attacked
//!   heuristically by [`adversarial_proof_search`] on larger ones.
//! * The "Proof size s" column of Table 1 — [`measure_sizes`] +
//!   [`classify_growth`].
//!
//! All checks run on [`PreparedInstance`]s: view skeletons are built once
//! per `(instance, radius)` and bound views borrow the candidate proof's
//! word-packed arena (see [`crate::engine`]). The proof-enumeration
//! odometer and the adversarial bit-flipper mutate one preallocated
//! arena in place and re-verify only the nodes whose views contain the
//! changed bits — zero heap allocations per candidate proof.

use crate::batch::BatchPolicy;
use crate::bits::BitString;
use crate::deadline::Deadline;
use crate::engine::PreparedInstance;
use crate::metrics;
use crate::proof::Proof;
use crate::scheme::Scheme;
use rand::rngs::StdRng;
use rand::RngExt;
use std::fmt;

/// A completeness violation: a yes-instance the scheme failed on.
#[derive(Clone, Debug)]
pub struct CompletenessFailure {
    /// Index of the failing instance in the input slice.
    pub instance: usize,
    /// What went wrong.
    pub reason: CompletenessError,
}

/// Ways completeness can fail.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompletenessError {
    /// The prover returned `None` although `holds` is true.
    ProverRefused,
    /// The honest proof was rejected by the listed nodes.
    Rejected(Vec<usize>),
    /// The prover labelled a no-instance (`holds` is false) with a proof
    /// that all nodes accepted — a soundness smell surfaced during a
    /// completeness sweep.
    AcceptedNoInstance,
    /// The attached [`Deadline`] expired before the verifier sweep
    /// finished — not a verdict about the scheme, a budget exhaustion.
    DeadlineExpired,
}

impl fmt::Display for CompletenessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompletenessError::ProverRefused => write!(f, "prover refused a yes-instance"),
            CompletenessError::Rejected(nodes) => {
                write!(f, "honest proof rejected at nodes {nodes:?}")
            }
            CompletenessError::AcceptedNoInstance => {
                write!(f, "a no-instance was fully accepted")
            }
            CompletenessError::DeadlineExpired => {
                write!(
                    f,
                    "wall budget expired before the completeness sweep finished"
                )
            }
        }
    }
}

/// Sweeps prepared instances: yes-instances must be provable and
/// accepted; no-instances, if the prover emits anything, must not be
/// fully accepted.
///
/// Returns the per-instance proof sizes of the yes-instances on success.
/// Prepare the sweep once with [`crate::engine::prepare_sweep`] and reuse
/// it across completeness, soundness, and size measurements.
///
/// With the `parallel` feature, instances are checked concurrently; the
/// reported failure is still the lowest-index one.
///
/// # Errors
///
/// The first [`CompletenessFailure`] encountered (in input order).
pub fn check_completeness<S>(
    scheme: &S,
    prepared: &[PreparedInstance<'_, S::Node, S::Edge>],
) -> Result<Vec<usize>, CompletenessFailure>
where
    S: Scheme + Sync,
    S::Node: Send + Sync,
    S::Edge: Send + Sync,
{
    let results = check_each(scheme, prepared);
    let mut sizes = Vec::new();
    for (i, r) in results.into_iter().enumerate() {
        match r {
            Ok(Some(size)) => sizes.push(size),
            Ok(None) => {}
            Err(reason) => {
                return Err(CompletenessFailure {
                    instance: i,
                    reason,
                })
            }
        }
    }
    Ok(sizes)
}

/// Completeness check of one prepared instance: `Ok(Some(size))` for an
/// accepted yes-instance, `Ok(None)` for a correctly handled no-instance.
///
/// Public single-instance entry point for callers that hold exactly one
/// prepared instance — the type-erased [`crate::dynamic::DynScheme`]
/// layer and the conformance campaign runner. The sweep variant is
/// [`check_completeness`].
///
/// Per-node evaluation uses the engine's size-gated parallel path: it
/// only fans out above [`crate::engine`]'s threshold (hundreds of
/// nodes), so calling this from an already-parallel cell sweep does not
/// nest thread fan-outs at typical campaign sizes.
pub fn check_instance<S>(
    scheme: &S,
    prep: &PreparedInstance<'_, S::Node, S::Edge>,
) -> Result<Option<usize>, CompletenessError>
where
    S: Scheme + Sync,
    S::Node: Send + Sync,
    S::Edge: Send + Sync,
{
    check_one(scheme, prep, true)
}

/// Deadline-aware [`check_instance`]: the verifier sweeps poll `deadline`
/// and bail out with [`CompletenessError::DeadlineExpired`] when the wall
/// budget runs out mid-sweep.
///
/// An unbounded deadline takes exactly the [`check_instance`] path, so
/// results (and any parallel fan-out) are unchanged when no budget is
/// attached. A bounded deadline forces the sequential per-node sweep —
/// identical outputs, checked node by node.
pub fn check_instance_within<S>(
    scheme: &S,
    prep: &PreparedInstance<'_, S::Node, S::Edge>,
    deadline: &Deadline,
) -> Result<Option<usize>, CompletenessError>
where
    S: Scheme + Sync,
    S::Node: Send + Sync,
    S::Edge: Send + Sync,
{
    if deadline.is_unbounded() {
        return check_one(scheme, prep, true);
    }
    let inst = prep.instance();
    match (scheme.holds(inst), scheme.prove(inst)) {
        (true, None) => Err(CompletenessError::ProverRefused),
        (true, Some(proof)) => match prep.evaluate_within(scheme, &proof, deadline) {
            Err(_) => Err(CompletenessError::DeadlineExpired),
            Ok(verdict) => {
                if verdict.accepted() {
                    Ok(Some(proof.size()))
                } else {
                    Err(CompletenessError::Rejected(verdict.rejecting()))
                }
            }
        },
        (false, Some(proof)) => match prep.evaluate_until_reject_within(scheme, &proof, deadline) {
            Err(_) => Err(CompletenessError::DeadlineExpired),
            Ok(None) => Err(CompletenessError::AcceptedNoInstance),
            Ok(Some(_)) => Ok(None),
        },
        (false, None) => Ok(None),
    }
}

/// Completeness check of one prepared instance: `Ok(Some(size))` for an
/// accepted yes-instance, `Ok(None)` for a correctly handled no-instance.
fn check_one<S>(
    scheme: &S,
    prep: &PreparedInstance<'_, S::Node, S::Edge>,
    parallel_nodes: bool,
) -> Result<Option<usize>, CompletenessError>
where
    S: Scheme + Sync,
    S::Node: Send + Sync,
    S::Edge: Send + Sync,
{
    let inst = prep.instance();
    match (scheme.holds(inst), scheme.prove(inst)) {
        (true, None) => Err(CompletenessError::ProverRefused),
        (true, Some(proof)) => {
            // Inside an already-parallel instance sweep, a nested
            // per-node fan-out would only pay thread-spawn overhead.
            let verdict = if parallel_nodes {
                prep.evaluate(scheme, &proof)
            } else {
                prep.evaluate_seq(scheme, &proof)
            };
            if verdict.accepted() {
                Ok(Some(proof.size()))
            } else {
                Err(CompletenessError::Rejected(verdict.rejecting()))
            }
        }
        (false, Some(proof)) => {
            if prep.evaluate_until_reject(scheme, &proof).is_none() {
                Err(CompletenessError::AcceptedNoInstance)
            } else {
                Ok(None)
            }
        }
        (false, None) => Ok(None),
    }
}

#[cfg(not(feature = "parallel"))]
fn check_each<S>(
    scheme: &S,
    prepared: &[PreparedInstance<'_, S::Node, S::Edge>],
) -> Vec<Result<Option<usize>, CompletenessError>>
where
    S: Scheme + Sync,
    S::Node: Send + Sync,
    S::Edge: Send + Sync,
{
    // Stop at the first failure: later instances are never reported
    // anyway, so checking them is wasted work.
    let mut out = Vec::with_capacity(prepared.len());
    for p in prepared {
        let r = check_one(scheme, p, true);
        let failed = r.is_err();
        out.push(r);
        if failed {
            break;
        }
    }
    out
}

#[cfg(feature = "parallel")]
fn check_each<S>(
    scheme: &S,
    prepared: &[PreparedInstance<'_, S::Node, S::Edge>],
) -> Vec<Result<Option<usize>, CompletenessError>>
where
    S: Scheme + Sync,
    S::Node: Send + Sync,
    S::Edge: Send + Sync,
{
    use rayon::prelude::*;
    if prepared.len() > 1 {
        // Parallel across instances; sequential within each (nested
        // fan-out would oversubscribe the cores).
        prepared
            .par_iter()
            .map(|p| check_one(scheme, p, false))
            .collect()
    } else {
        prepared
            .iter()
            .map(|p| check_one(scheme, p, true))
            .collect()
    }
}

/// Number of bit strings with at most `max_bits` bits
/// (`2^(max_bits+1) − 1`), or `None` when even that count overflows
/// `u128`.
fn bitstring_space(max_bits: usize) -> Option<u128> {
    if max_bits >= 127 {
        None
    } else {
        Some((1u128 << (max_bits + 1)) - 1)
    }
}

/// All bit strings with at most `max_bits` bits, shortest first
/// (`2^(max_bits+1) − 1` strings).
///
/// # Errors
///
/// [`SoundnessError::SearchSpaceTooLarge`] when the table itself would
/// exceed [`EXHAUSTIVE_PROOF_LIMIT`] entries (reported with `n = 1`).
/// In particular `max_bits ≥ 64` is always refused — the per-length
/// enumeration `0..2^len` would overflow `u64` — instead of panicking
/// (debug) or wrapping (release) on the shift.
pub fn all_bitstrings_up_to(max_bits: usize) -> Result<Vec<BitString>, SoundnessError> {
    let count = bitstring_space(max_bits);
    if count.is_none_or(|c| c > EXHAUSTIVE_PROOF_LIMIT) {
        return Err(SoundnessError::SearchSpaceTooLarge {
            strings: count.map_or(usize::MAX, |c| c.min(usize::MAX as u128) as usize),
            n: 1,
            space: count,
        });
    }
    let mut out = vec![BitString::new()];
    for len in 1..=max_bits {
        for value in 0u64..(1 << len) {
            out.push(BitString::from_bits(
                (0..len).rev().map(|i| value >> i & 1 == 1),
            ));
        }
    }
    Ok(out)
}

/// Outcome of an exhaustive soundness check on one no-instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Soundness {
    /// Every proof up to the size bound was rejected by some node;
    /// carries the number of proofs enumerated.
    Holds(u64),
    /// A fully-accepted proof for the no-instance — a genuine violation.
    Violated(Proof),
}

/// The exhaustive search was refused or abandoned without a verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SoundnessError {
    /// `(2^(max_bits+1) − 1)^n` exceeds [`EXHAUSTIVE_PROOF_LIMIT`] (or
    /// overflows `u128`, in which case `space` is `None`).
    SearchSpaceTooLarge {
        /// Number of candidate strings per node.
        strings: usize,
        /// Number of nodes.
        n: usize,
        /// The exact space when it fits in a `u128`.
        space: Option<u128>,
    },
    /// The attached [`Deadline`] expired mid-enumeration, after `tried`
    /// candidates — no soundness verdict was reached.
    DeadlineExpired {
        /// Candidates enumerated before the budget ran out.
        tried: u64,
    },
}

impl fmt::Display for SoundnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SoundnessError::SearchSpaceTooLarge { strings, n, space } => match space {
                Some(s) => write!(
                    f,
                    "search space of {strings}^{n} = {s} proofs exceeds the limit of \
                     {EXHAUSTIVE_PROOF_LIMIT}; shrink n or max_bits"
                ),
                None => write!(
                    f,
                    "search space of {strings}^{n} proofs overflows u128; shrink n or max_bits"
                ),
            },
            SoundnessError::DeadlineExpired { tried } => write!(
                f,
                "wall budget expired after {tried} candidate proofs, before a soundness verdict"
            ),
        }
    }
}

impl std::error::Error for SoundnessError {}

/// Upper bound on the number of proofs [`check_soundness_exhaustive`]
/// will enumerate.
pub const EXHAUSTIVE_PROOF_LIMIT: u128 = 100_000_000;

/// Total byte budget for the exhaustive check's verifier-output memo
/// (per-owner tables of `strings^|ball|` entries). Above this the
/// odometer simply re-runs verifiers — same results, no table.
const MEMO_BYTE_CAP: usize = 1 << 22;

/// Verifier-output memo for the exhaustive odometer.
///
/// During enumeration, node `v`'s view content is fully determined by
/// the string-table indices of its ball members (the topology is
/// fixed), so each owner's output is a pure function of a mixed-radix
/// signature over `indices[members(v)]`. Tables are preallocated once
/// and filled lazily — a hit replaces a whole bind + verify with a few
/// multiplies and a byte load, and the loop stays allocation-free.
pub(crate) struct OutputMemo {
    /// Table region offsets per owner (`off[v]..off[v + 1]`).
    off: Vec<usize>,
    /// 0 = unknown, 1 = rejected, 2 = accepted.
    pub(crate) table: Vec<u8>,
    /// Radix: the number of candidate strings per node.
    radix: usize,
}

impl OutputMemo {
    /// Builds the memo when every owner's signature space fits the byte
    /// budget; `None` falls back to direct re-verification.
    pub(crate) fn try_new(
        ball_sizes: impl Iterator<Item = usize>,
        radix: usize,
    ) -> Option<OutputMemo> {
        let mut off = vec![0usize];
        let mut total = 0usize;
        for b in ball_sizes {
            let mut size = 1usize;
            for _ in 0..b {
                size = size.checked_mul(radix)?;
            }
            total = total.checked_add(size)?;
            if total > MEMO_BYTE_CAP {
                return None;
            }
            off.push(total);
        }
        Some(OutputMemo {
            off,
            table: vec![0u8; total],
            radix,
        })
    }

    /// The owner's table slot for the current odometer state.
    #[inline(always)]
    pub(crate) fn slot(&self, owner: usize, members: &[u32], indices: &[usize]) -> usize {
        let mut sig = 0usize;
        for &m in members {
            sig = sig * self.radix + indices[m as usize];
        }
        self.off[owner] + sig
    }
}

/// Exhaustively enumerates **every** proof of size ≤ `max_bits` on a
/// prepared no-instance and checks that each is rejected somewhere.
///
/// The search space has `(2^(max_bits+1) − 1)^n` proofs, so keep
/// `n · max_bits` small (the point is to decide the `∀ P` quantifier
/// *exactly* on small instances).
///
/// The enumeration is an odometer over per-node string indices: between
/// consecutive candidates only the rolled-over nodes change. Each change
/// is a word-level copy into one preallocated proof arena, and only the
/// verifiers whose views contain the changed node re-run — zero heap
/// allocations per candidate (the arena-engine fast path that makes the
/// `10^8`-proof budget practical).
///
/// # Errors
///
/// [`SoundnessError::SearchSpaceTooLarge`] when the space exceeds
/// [`EXHAUSTIVE_PROOF_LIMIT`] proofs (checked in `u128`, no float
/// saturation, no shift overflow for any `max_bits`).
///
/// # Panics
///
/// Panics if the instance is a yes-instance (soundness is about
/// no-instances).
pub fn check_soundness_exhaustive<S: Scheme>(
    scheme: &S,
    prep: &PreparedInstance<'_, S::Node, S::Edge>,
    max_bits: usize,
) -> Result<Soundness, SoundnessError>
where
    S::Node: Send + Sync,
    S::Edge: Send + Sync,
{
    check_soundness_exhaustive_within(scheme, prep, max_bits, &Deadline::none())
}

/// Deadline-aware [`check_soundness_exhaustive`]: the odometer polls
/// `deadline` every [`crate::deadline::CHECK_INTERVAL`] candidates and
/// abandons the enumeration with [`SoundnessError::DeadlineExpired`]
/// when the wall budget runs out. Unbounded deadlines add one branch per
/// candidate and change nothing else.
///
/// # Errors / Panics
///
/// As [`check_soundness_exhaustive`], plus
/// [`SoundnessError::DeadlineExpired`] on budget exhaustion.
pub fn check_soundness_exhaustive_within<S: Scheme>(
    scheme: &S,
    prep: &PreparedInstance<'_, S::Node, S::Edge>,
    max_bits: usize,
    deadline: &Deadline,
) -> Result<Soundness, SoundnessError>
where
    S::Node: Send + Sync,
    S::Edge: Send + Sync,
{
    check_soundness_exhaustive_policy(scheme, prep, max_bits, deadline, BatchPolicy::default())
}

/// [`check_soundness_exhaustive_within`] with an explicit
/// [`BatchPolicy`]: `Auto` (the default everywhere else) routes the
/// enumeration through the batched block odometer of [`crate::batch`]
/// when compiled in and applicable, `Scalar` forces the classic
/// per-candidate loop. **Identical results either way** — same verdict,
/// same first violating proof, same `tried` counts, same deadline grid
/// (pinned by the `batch_equivalence` property tests).
///
/// # Errors / Panics
///
/// As [`check_soundness_exhaustive_within`].
pub fn check_soundness_exhaustive_policy<S: Scheme>(
    scheme: &S,
    prep: &PreparedInstance<'_, S::Node, S::Edge>,
    max_bits: usize,
    deadline: &Deadline,
    policy: BatchPolicy,
) -> Result<Soundness, SoundnessError>
where
    S::Node: Send + Sync,
    S::Edge: Send + Sync,
{
    assert!(
        !scheme.holds(prep.instance()),
        "exhaustive soundness check requires a no-instance"
    );
    let n = prep.n();
    let per_node = bitstring_space(max_bits);
    let space = per_node.and_then(|c| c.checked_pow(n as u32));
    if space.is_none_or(|s| s > EXHAUSTIVE_PROOF_LIMIT) {
        return Err(SoundnessError::SearchSpaceTooLarge {
            strings: per_node.map_or(usize::MAX, |c| c.min(usize::MAX as u128) as usize),
            n,
            space,
        });
    }
    if n == 0 {
        // The empty graph accepts every proof vacuously; the only proof
        // is ε, so soundness is violated by definition.
        return Ok(Soundness::Violated(Proof::empty(0)));
    }
    let strings = all_bitstrings_up_to(max_bits).expect("per-node table within the checked space");
    if crate::batch::enabled(policy) {
        // The block odometer declines shapes it cannot lay out (string
        // table outside 2..=64, mask tables over budget) — those fall
        // through to the scalar loop.
        if let Some(result) = crate::batch::exhaustive(scheme, prep, max_bits, &strings, deadline) {
            metrics::EXHAUSTIVE_BATCHED.inc();
            return result;
        }
    }
    metrics::EXHAUSTIVE_SCALAR.inc();
    exhaustive_scalar(scheme, prep, max_bits, &strings, deadline)
}

/// The classic one-candidate-at-a-time odometer (the `Scalar` route and
/// the fallback for shapes the batch layer declines).
fn exhaustive_scalar<S: Scheme>(
    scheme: &S,
    prep: &PreparedInstance<'_, S::Node, S::Edge>,
    max_bits: usize,
    strings: &[BitString],
    deadline: &Deadline,
) -> Result<Soundness, SoundnessError> {
    let n = prep.n();
    // One preallocated arena holds the candidate; the all-ε start is
    // verified once, then every later candidate mutates the arena in
    // place and re-runs only the affected verifiers.
    let mut proof = Proof::with_capacity(n, max_bits);
    let mut indices = vec![0usize; n];
    // During enumeration a view's content is a pure function of its
    // members' string indices, so verifier outputs can be memoized in a
    // preallocated table (skipped when the signature spaces outgrow the
    // byte budget). Identical results either way — only fewer verifier
    // invocations.
    let mut memo = OutputMemo::try_new((0..n).map(|v| prep.members_of(v).len()), strings.len());
    // Metric accumulators: `Cell`s shared by the check closure and the
    // exit-time flush, so the per-candidate path touches no shared atomic.
    let memo_hits = std::cell::Cell::new(0u64);
    let memo_misses = std::cell::Cell::new(0u64);
    let verifies = std::cell::Cell::new(0u64);
    let flush = |tried: u64| {
        metrics::EXHAUSTIVE_CANDIDATES.add(tried);
        metrics::BINDS.add(verifies.get());
        metrics::MEMO_HITS.add(memo_hits.get());
        metrics::MEMO_MISSES.add(memo_misses.get());
    };
    let check =
        |owner: usize, proof: &Proof, indices: &[usize], memo: &mut Option<OutputMemo>| -> bool {
            if let Some(m) = memo {
                let slot = m.slot(owner, prep.members_of(owner), indices);
                match m.table[slot] {
                    0 => {
                        let now = scheme.verify(&prep.bind(owner, proof));
                        m.table[slot] = 1 + now as u8;
                        memo_misses.set(memo_misses.get() + 1);
                        verifies.set(verifies.get() + 1);
                        now
                    }
                    cached => {
                        memo_hits.set(memo_hits.get() + 1);
                        cached == 2
                    }
                }
            } else {
                verifies.set(verifies.get() + 1);
                scheme.verify(&prep.bind(owner, proof))
            }
        };
    let mut outputs: Vec<bool> = (0..n)
        .map(|v| check(v, &proof, &indices, &mut memo))
        .collect();
    let mut rejecting = outputs.iter().filter(|&&b| !b).count();
    let mut tried = 0u64;
    loop {
        tried += 1;
        if rejecting == 0 {
            flush(tried);
            return Ok(Soundness::Violated(proof));
        }
        if deadline.should_stop(tried) {
            flush(tried);
            return Err(SoundnessError::DeadlineExpired { tried });
        }
        // Odometer increment; each changed node overwrites its arena
        // slot (a word copy) and re-runs only its dependent verifiers.
        let mut pos = 0;
        loop {
            if pos == n {
                flush(tried);
                return Ok(Soundness::Holds(tried));
            }
            indices[pos] += 1;
            let rolled = indices[pos] == strings.len();
            if rolled {
                indices[pos] = 0;
            }
            proof.set(pos, &strings[indices[pos]]);
            for owner in prep.dependents(pos) {
                let now = check(owner, &proof, &indices, &mut memo);
                match (outputs[owner], now) {
                    (true, false) => rejecting += 1,
                    (false, true) => rejecting -= 1,
                    _ => {}
                }
                outputs[owner] = now;
            }
            if !rolled {
                break;
            }
            pos += 1;
        }
    }
}

/// A uniformly random proof: each node gets `max_bits` random bits.
///
/// The arena reserves exactly `max_bits` per node, so subsequent
/// in-budget mutations (bit flips, refills) never allocate.
pub fn random_proof(n: usize, max_bits: usize, rng: &mut StdRng) -> Proof {
    let mut proof = Proof::with_capacity(n, max_bits);
    refill_random(&mut proof, max_bits, rng);
    proof
}

/// Regenerates every node's bits in place — same RNG stream as
/// [`random_proof`], zero allocations (the restart path of
/// [`adversarial_proof_search`], shared with the batched search).
pub(crate) fn refill_random(proof: &mut Proof, max_bits: usize, rng: &mut StdRng) {
    for v in 0..proof.n() {
        proof.write_bits(v, (0..max_bits).map(|_| rng.random_bool(0.5)));
    }
}

/// Randomized adversarial proof search on a prepared no-instance:
/// hill-climbs the number of accepting nodes by flipping random bits,
/// restarting from random proofs.
///
/// Each candidate differs from the incumbent at a single node: the flip
/// is one XOR in the preallocated proof arena, only the `O(|ball|)`
/// verifiers that can see it are re-scored, and a rejected candidate is
/// reverted by flipping the bit back — zero heap allocations per
/// candidate. Full sweeps happen only at restarts (and even those refill
/// the arena in place).
///
/// Returns a fully-accepted proof (a soundness violation for the given
/// size budget) if one is found within `iterations` candidate steps.
/// Finding `None` is *evidence*, not proof, of soundness — use
/// [`check_soundness_exhaustive`] for certainty on small instances.
///
/// # Panics
///
/// Panics if the instance is a yes-instance.
pub fn adversarial_proof_search<S: Scheme>(
    scheme: &S,
    prep: &PreparedInstance<'_, S::Node, S::Edge>,
    size_budget: usize,
    iterations: usize,
    rng: &mut StdRng,
) -> Option<Proof>
where
    S::Node: Send + Sync,
    S::Edge: Send + Sync,
{
    adversarial_proof_search_within(
        scheme,
        prep,
        size_budget,
        iterations,
        rng,
        &Deadline::none(),
    )
}

/// Deadline-aware [`adversarial_proof_search`]: polls `deadline` every
/// 256 candidate steps (each step re-runs a ball's worth of verifiers,
/// so the stride is finer than the enumeration loops') and gives up
/// early — returning `None` — when the wall budget runs out. Callers
/// that need to distinguish "no forgery found" from "ran out of budget"
/// check `deadline.expired()` afterwards.
///
/// # Panics
///
/// Panics if the instance is a yes-instance.
pub fn adversarial_proof_search_within<S: Scheme>(
    scheme: &S,
    prep: &PreparedInstance<'_, S::Node, S::Edge>,
    size_budget: usize,
    iterations: usize,
    rng: &mut StdRng,
    deadline: &Deadline,
) -> Option<Proof>
where
    S::Node: Send + Sync,
    S::Edge: Send + Sync,
{
    adversarial_proof_search_policy(
        scheme,
        prep,
        size_budget,
        iterations,
        rng,
        deadline,
        BatchPolicy::default(),
    )
}

/// [`adversarial_proof_search_within`] with an explicit [`BatchPolicy`]:
/// `Auto` routes schemes with a bit-sliced kernel
/// ([`Scheme::supports_batch`]) through the chunked 64-lane search of
/// [`crate::batch`]; everything else (no kernel, zero size budget,
/// bounded deadline, or `Scalar`) takes the classic per-flip loop.
/// **Identical results either way** — same incumbent, same returned
/// proof, and the RNG is left at the same stream position on every exit
/// path (pinned by the `batch_equivalence` property tests).
///
/// # Panics
///
/// Panics if the instance is a yes-instance.
pub fn adversarial_proof_search_policy<S: Scheme>(
    scheme: &S,
    prep: &PreparedInstance<'_, S::Node, S::Edge>,
    size_budget: usize,
    iterations: usize,
    rng: &mut StdRng,
    deadline: &Deadline,
    policy: BatchPolicy,
) -> Option<Proof>
where
    S::Node: Send + Sync,
    S::Edge: Send + Sync,
{
    assert!(
        !scheme.holds(prep.instance()),
        "adversarial search requires a no-instance"
    );
    let n = prep.n();
    if n == 0 {
        return None;
    }
    if crate::batch::enabled(policy) {
        if let Some(result) =
            crate::batch::adversarial(scheme, prep, size_budget, iterations, rng, deadline)
        {
            metrics::ADVERSARIAL_BATCHED.inc();
            return result;
        }
    }
    metrics::ADVERSARIAL_SCALAR.inc();
    let mut proof = random_proof(n, size_budget, rng);
    let mut outputs: Vec<bool> = (0..n)
        .map(|v| scheme.verify(&prep.bind(v, &proof)))
        .collect();
    let mut score = outputs.iter().filter(|&&b| b).count();
    // Verifier re-runs, accumulated locally and flushed into the shared
    // bind counter only when the loop exits.
    let mut verifies = n as u64;
    // Scratch reused across candidates (the only buffer the loop needs).
    let mut touched: Vec<(usize, bool)> = Vec::new();
    for iter in 0..iterations {
        if score == n {
            metrics::ADVERSARIAL_STEPS.add(iter as u64);
            metrics::BINDS.add(verifies);
            return Some(proof);
        }
        if deadline.poll(iter as u64, 0xff) {
            metrics::ADVERSARIAL_STEPS.add(iter as u64);
            metrics::BINDS.add(verifies);
            return None;
        }
        // Occasional restart to escape local optima: refill the arena in
        // place and re-score everything.
        if iter % 200 == 199 {
            refill_random(&mut proof, size_budget, rng);
            for (v, out) in outputs.iter_mut().enumerate() {
                *out = scheme.verify(&prep.bind(v, &proof));
            }
            verifies += n as u64;
            score = outputs.iter().filter(|&&b| b).count();
            continue;
        }
        if size_budget == 0 {
            continue;
        }
        // Mutate one node in place; remember how to undo it.
        let v = rng.random_range(0..n);
        let flipped = if proof.get(v).is_empty() {
            proof.write_bits(v, (0..size_budget).map(|_| rng.random_bool(0.5)));
            None
        } else {
            let idx = rng.random_range(0..proof.get(v).len());
            proof.flip(v, idx);
            Some(idx)
        };
        // Re-score only the verifiers that can see node v.
        let mut new_score = score;
        touched.clear();
        for owner in prep.dependents(v) {
            let now = scheme.verify(&prep.bind(owner, &proof));
            match (outputs[owner], now) {
                (true, false) => new_score -= 1,
                (false, true) => new_score += 1,
                _ => {}
            }
            touched.push((owner, now));
        }
        verifies += touched.len() as u64;
        if new_score >= score {
            for &(owner, out) in &touched {
                outputs[owner] = out;
            }
            score = new_score;
        } else {
            // Undo the mutation (flip back, or truncate a fresh fill).
            match flipped {
                Some(idx) => proof.flip(v, idx),
                None => proof.clear(v),
            }
        }
    }
    metrics::ADVERSARIAL_STEPS.add(iterations as u64);
    metrics::BINDS.add(verifies);
    (score == n).then_some(proof)
}

/// One measured point of the "Proof size s" column: instance size vs.
/// honest proof size in bits per node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SizePoint {
    /// `n(G)` of the instance.
    pub n: usize,
    /// `|P|` of the honest proof.
    pub bits: usize,
}

/// Proves every (yes-)instance of a prepared sweep and records
/// `(n, |P|)` points.
///
/// # Panics
///
/// Panics if the prover refuses an instance — callers feed yes-instances.
pub fn measure_sizes<S: Scheme>(
    scheme: &S,
    prepared: &[PreparedInstance<'_, S::Node, S::Edge>],
) -> Vec<SizePoint> {
    prepared
        .iter()
        .map(|prep| {
            let inst = prep.instance();
            let proof = scheme
                .prove(inst)
                .unwrap_or_else(|| panic!("{} refused an instance", scheme.name()));
            SizePoint {
                n: inst.n(),
                bits: proof.size(),
            }
        })
        .collect()
}

/// Growth classes used to compare measured proof sizes against the
/// paper's asymptotic claims.
///
/// The derived ordering follows the asymptotic hierarchy
/// (`Zero < Constant < Logarithmic < Linear < Quadratic`), so
/// `measured <= claimed` is exactly "the measurement respects the
/// claimed upper bound".
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum GrowthClass {
    /// Identically zero — `LCP(0)`.
    Zero,
    /// Bounded — `LCP(O(1))`.
    Constant,
    /// `Θ(log n)` — `LogLCP`.
    Logarithmic,
    /// `Θ(n)`.
    Linear,
    /// `Θ(n²)` (the `n²/log n` lower bound also lands here at feasible n).
    Quadratic,
}

impl fmt::Display for GrowthClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GrowthClass::Zero => "0",
            GrowthClass::Constant => "Θ(1)",
            GrowthClass::Logarithmic => "Θ(log n)",
            GrowthClass::Linear => "Θ(n)",
            GrowthClass::Quadratic => "Θ(n²)",
        };
        write!(f, "{s}")
    }
}

/// Fits measured `(n, bits)` points against candidate growth shapes by
/// least squares and returns the best-fitting class.
///
/// The classification is deliberately coarse — it reproduces the *shape*
/// claims of Table 1, not constants. Points should span at least a factor
/// of 4 in `n` for the classes to separate.
pub fn classify_growth(points: &[SizePoint]) -> GrowthClass {
    assert!(!points.is_empty(), "need at least one measurement");
    if points.iter().all(|p| p.bits == 0) {
        return GrowthClass::Zero;
    }
    let lo = points.iter().map(|p| p.bits).min().expect("nonempty");
    let hi = points.iter().map(|p| p.bits).max().expect("nonempty");
    if hi <= lo.max(1) * 2 && hi.saturating_sub(lo) <= 3 {
        return GrowthClass::Constant;
    }
    // Least-squares fit bits ≈ a · f(n) + b for each candidate f; compare
    // residuals (normalized by total variance).
    let candidates: [(GrowthClass, fn(f64) -> f64); 4] = [
        (GrowthClass::Logarithmic, |n| n.log2()),
        (GrowthClass::Linear, |n| n),
        (GrowthClass::Quadratic, |n| n * n),
        (GrowthClass::Constant, |_| 1.0),
    ];
    let ys: Vec<f64> = points.iter().map(|p| p.bits as f64).collect();
    let mean_y = ys.iter().sum::<f64>() / ys.len() as f64;
    let var_y: f64 = ys.iter().map(|y| (y - mean_y).powi(2)).sum();
    let mut best = (GrowthClass::Constant, f64::INFINITY);
    for (class, f) in candidates {
        let xs: Vec<f64> = points.iter().map(|p| f(p.n as f64)).collect();
        let mean_x = xs.iter().sum::<f64>() / xs.len() as f64;
        let sxx: f64 = xs.iter().map(|x| (x - mean_x).powi(2)).sum();
        let sxy: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (x - mean_x) * (y - mean_y))
            .sum();
        let a = if sxx == 0.0 { 0.0 } else { sxy / sxx };
        let b = mean_y - a * mean_x;
        let sse: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (y - (a * x + b)).powi(2))
            .sum();
        let normalized = if var_y == 0.0 { 0.0 } else { sse / var_y };
        if normalized < best.1 - 1e-9 {
            best = (class, normalized);
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{prepare, prepare_sweep};
    use crate::instance::Instance;
    use crate::scheme::evaluate;
    use crate::view::View;
    use lcp_graph::generators;
    use rand::SeedableRng;

    /// The 1-bit bipartiteness scheme, used as the harness guinea pig.
    struct Bipartite;
    impl Scheme for Bipartite {
        type Node = ();
        type Edge = ();
        fn name(&self) -> String {
            "bipartite".into()
        }
        fn radius(&self) -> usize {
            1
        }
        fn holds(&self, inst: &Instance) -> bool {
            lcp_graph::traversal::is_bipartite(inst.graph())
        }
        fn prove(&self, inst: &Instance) -> Option<Proof> {
            let colors = lcp_graph::traversal::bipartition(inst.graph())?;
            Some(Proof::from_fn(inst.n(), |v| {
                BitString::from_bits([colors[v] == 1])
            }))
        }
        fn verify(&self, view: &View) -> bool {
            let c = view.center();
            let mine = view.proof(c).first();
            mine.is_some()
                && view
                    .neighbors(c)
                    .iter()
                    .all(|&u| view.proof(u).first().is_some_and(|b| Some(b) != mine))
        }
    }

    #[test]
    fn completeness_sweep_passes_on_even_cycles() {
        let instances: Vec<Instance> = (2..8)
            .map(|k| Instance::unlabeled(generators::cycle(2 * k)))
            .collect();
        let prepared = prepare_sweep(&Bipartite, &instances);
        let sizes = check_completeness(&Bipartite, &prepared).unwrap();
        assert!(sizes.iter().all(|&s| s == 1));
    }

    #[test]
    fn completeness_sweep_tolerates_no_instances() {
        let instances = vec![
            Instance::unlabeled(generators::cycle(5)),
            Instance::unlabeled(generators::cycle(6)),
        ];
        let prepared = prepare_sweep(&Bipartite, &instances);
        assert!(check_completeness(&Bipartite, &prepared).is_ok());
    }

    #[test]
    fn exhaustive_soundness_on_odd_cycle() {
        let inst = Instance::unlabeled(generators::cycle(5));
        let prep = prepare(&Bipartite, &inst);
        match check_soundness_exhaustive(&Bipartite, &prep, 1).unwrap() {
            Soundness::Holds(tried) => assert_eq!(tried, 3u64.pow(5)),
            Soundness::Violated(p) => panic!("bipartite scheme fooled by {p:?}"),
        }
    }

    #[test]
    fn exhaustive_soundness_agrees_with_naive_enumeration() {
        /// Deliberately unsound: accepts when every visible bit is 1.
        struct Gullible;
        impl Scheme for Gullible {
            type Node = ();
            type Edge = ();
            fn name(&self) -> String {
                "gullible".into()
            }
            fn radius(&self) -> usize {
                1
            }
            fn holds(&self, _: &Instance) -> bool {
                false
            }
            fn prove(&self, _: &Instance) -> Option<Proof> {
                None
            }
            fn verify(&self, view: &View) -> bool {
                view.nodes().all(|u| view.proof(u).first() == Some(true))
            }
        }
        let inst = Instance::unlabeled(generators::path(4));
        let prep = prepare(&Gullible, &inst);
        let engine = check_soundness_exhaustive(&Gullible, &prep, 1).unwrap();
        // Naive reference: enumerate in the same odometer order.
        let strings = all_bitstrings_up_to(1).unwrap();
        let mut indices = [0usize; 4];
        let naive = 'outer: loop {
            let proof = Proof::from_strings(indices.iter().map(|&i| strings[i].clone()).collect());
            if evaluate(&Gullible, &inst, &proof).accepted() {
                break Soundness::Violated(proof);
            }
            let mut pos = 0;
            loop {
                if pos == 4 {
                    break 'outer Soundness::Holds(0);
                }
                indices[pos] += 1;
                if indices[pos] < strings.len() {
                    break;
                }
                indices[pos] = 0;
                pos += 1;
            }
        };
        match (engine, naive) {
            (Soundness::Violated(a), Soundness::Violated(b)) => {
                assert_eq!(a, b, "same first violating proof in odometer order")
            }
            (a, b) => panic!("outcomes diverged: engine={a:?}, naive={b:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "no-instance")]
    fn exhaustive_soundness_rejects_yes_instances() {
        let inst = Instance::unlabeled(generators::cycle(4));
        let prep = prepare(&Bipartite, &inst);
        let _ = check_soundness_exhaustive(&Bipartite, &prep, 1);
    }

    #[test]
    fn exhaustive_soundness_refuses_oversized_spaces() {
        let inst = Instance::unlabeled(generators::cycle(65));
        let prep = prepare(&Bipartite, &inst);
        let err = check_soundness_exhaustive(&Bipartite, &prep, 8).unwrap_err();
        let SoundnessError::SearchSpaceTooLarge { strings, n, space } = err else {
            panic!("expected a search-space refusal, got {err:?}");
        };
        assert_eq!(strings, 511);
        assert_eq!(n, 65);
        assert_eq!(space, None, "511^65 overflows u128");
    }

    #[test]
    fn exhaustive_soundness_reports_exact_space_when_it_fits() {
        let inst = Instance::unlabeled(generators::cycle(17));
        let prep = prepare(&Bipartite, &inst);
        let err = check_soundness_exhaustive(&Bipartite, &prep, 2).unwrap_err();
        let SoundnessError::SearchSpaceTooLarge { strings, n, space } = err.clone() else {
            panic!("expected a search-space refusal, got {err:?}");
        };
        assert_eq!((strings, n), (7, 17));
        assert_eq!(space, Some(7u128.pow(17)));
        assert!(err.to_string().contains("exceeds the limit"));
    }

    #[test]
    fn adversarial_search_fails_against_sound_scheme() {
        let inst = Instance::unlabeled(generators::cycle(7));
        let prep = prepare(&Bipartite, &inst);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(adversarial_proof_search(&Bipartite, &prep, 1, 500, &mut rng).is_none());
    }

    #[test]
    fn adversarial_search_breaks_a_broken_scheme() {
        /// Deliberately unsound: accepts when every node holds bit 1.
        struct Gullible;
        impl Scheme for Gullible {
            type Node = ();
            type Edge = ();
            fn name(&self) -> String {
                "gullible".into()
            }
            fn radius(&self) -> usize {
                0
            }
            fn holds(&self, _: &Instance) -> bool {
                false // everything is a no-instance
            }
            fn prove(&self, _: &Instance) -> Option<Proof> {
                None
            }
            fn verify(&self, view: &View) -> bool {
                view.proof(view.center()).first() == Some(true)
            }
        }
        let inst = Instance::unlabeled(generators::cycle(6));
        let prep = prepare(&Gullible, &inst);
        let mut rng = StdRng::seed_from_u64(2);
        let forged = adversarial_proof_search(&Gullible, &prep, 1, 2000, &mut rng)
            .expect("hill climbing finds the all-ones proof");
        assert!(evaluate(&Gullible, &inst, &forged).accepted());
        assert!(prep.evaluate(&Gullible, &forged).accepted());
    }

    #[test]
    fn bitstring_enumeration_counts() {
        assert_eq!(all_bitstrings_up_to(0).unwrap().len(), 1);
        assert_eq!(all_bitstrings_up_to(1).unwrap().len(), 3);
        assert_eq!(all_bitstrings_up_to(3).unwrap().len(), 15);
        // No duplicates.
        let all = all_bitstrings_up_to(3).unwrap();
        let set: std::collections::HashSet<_> = all.iter().cloned().collect();
        assert_eq!(set.len(), all.len());
    }

    #[test]
    fn bitstring_enumeration_refuses_shift_overflow() {
        // 1u64 << len would panic (debug) or wrap (release) at len = 64;
        // the guard returns the refusal error instead of computing.
        for max_bits in [64, 65, 100, 127, 128, usize::MAX] {
            let err = all_bitstrings_up_to(max_bits).unwrap_err();
            let SoundnessError::SearchSpaceTooLarge { strings, n, space } = err else {
                panic!("expected a search-space refusal, got {err:?}");
            };
            assert_eq!(n, 1);
            assert_eq!(strings, usize::MAX, "count saturates at {max_bits}");
            if max_bits >= 127 {
                assert_eq!(space, None, "count overflows u128 at {max_bits}");
            } else {
                assert_eq!(space, Some((1u128 << (max_bits + 1)) - 1));
            }
        }
        // Oversized but representable tables are refused too.
        assert!(all_bitstrings_up_to(30).is_err());
    }

    #[test]
    fn growth_classification() {
        let zero: Vec<SizePoint> = (1..6).map(|k| SizePoint { n: 10 * k, bits: 0 }).collect();
        assert_eq!(classify_growth(&zero), GrowthClass::Zero);

        let constant: Vec<SizePoint> = (1..6).map(|k| SizePoint { n: 10 * k, bits: 2 }).collect();
        assert_eq!(classify_growth(&constant), GrowthClass::Constant);

        let log: Vec<SizePoint> = (2..10)
            .map(|k| {
                let n = 1usize << k;
                SizePoint {
                    n,
                    bits: 3 * k as usize + 2,
                }
            })
            .collect();
        assert_eq!(classify_growth(&log), GrowthClass::Logarithmic);

        let linear: Vec<SizePoint> = (1..10)
            .map(|k| SizePoint {
                n: 8 * k,
                bits: 16 * k + 3,
            })
            .collect();
        assert_eq!(classify_growth(&linear), GrowthClass::Linear);

        let quad: Vec<SizePoint> = (1..10)
            .map(|k| SizePoint {
                n: 8 * k,
                bits: (8 * k) * (8 * k),
            })
            .collect();
        assert_eq!(classify_growth(&quad), GrowthClass::Quadratic);
    }

    #[test]
    fn measure_sizes_reports_one_bit_for_bipartite() {
        let instances: Vec<Instance> = (2..6)
            .map(|k| Instance::unlabeled(generators::cycle(2 * k)))
            .collect();
        let prepared = prepare_sweep(&Bipartite, &instances);
        let points = measure_sizes(&Bipartite, &prepared);
        assert_eq!(classify_growth(&points), GrowthClass::Constant);
    }

    #[test]
    fn random_proof_respects_budget() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = random_proof(5, 4, &mut rng);
        assert_eq!(p.n(), 5);
        assert!(p.size() <= 4);
    }

    /// Deliberately unsound scheme used by the deadline tests: accepts
    /// when every visible first bit is 1, so the only ≤1-bit violation
    /// is the all-`"1"` proof — the *last* candidate in odometer order.
    struct GulliblePath;
    impl Scheme for GulliblePath {
        type Node = ();
        type Edge = ();
        fn name(&self) -> String {
            "gullible-path".into()
        }
        fn radius(&self) -> usize {
            1
        }
        fn holds(&self, _: &Instance) -> bool {
            false
        }
        fn prove(&self, _: &Instance) -> Option<Proof> {
            None
        }
        fn verify(&self, view: &View) -> bool {
            view.nodes().all(|u| view.proof(u).first() == Some(true))
        }
    }

    #[test]
    fn exhaustive_soundness_stops_at_an_expired_deadline() {
        use crate::deadline::CHECK_INTERVAL;
        use std::time::Duration;
        // 3^9 = 19683 candidates: past the first deadline poll, before
        // the (final-candidate) violation.
        let inst = Instance::unlabeled(generators::path(9));
        let prep = prepare(&GulliblePath, &inst);
        let expired = Deadline::after(Duration::ZERO);
        let err = check_soundness_exhaustive_within(&GulliblePath, &prep, 1, &expired).unwrap_err();
        assert_eq!(
            err,
            SoundnessError::DeadlineExpired {
                tried: CHECK_INTERVAL
            }
        );
        // The unbounded token enumerates to the genuine violation.
        let ok = check_soundness_exhaustive_within(&GulliblePath, &prep, 1, &Deadline::none());
        assert!(matches!(ok, Ok(Soundness::Violated(_))));
    }

    #[test]
    fn exhaustive_soundness_reports_a_violation_found_before_the_poll() {
        use std::time::Duration;
        // The Gullible-from-above violation on a short path falls below
        // the poll stride, so even an expired deadline sees it first.
        let inst = Instance::unlabeled(generators::path(4));
        let prep = prepare(&GulliblePath, &inst);
        let expired = Deadline::after(Duration::ZERO);
        let got = check_soundness_exhaustive_within(&GulliblePath, &prep, 1, &expired).unwrap();
        assert!(matches!(got, Soundness::Violated(_)));
    }

    #[test]
    fn adversarial_search_gives_up_at_an_expired_deadline() {
        use std::time::Duration;
        let inst = Instance::unlabeled(generators::cycle(6));
        let prep = prepare(&GulliblePath, &inst);
        // The unbounded search forges a proof from this seed...
        let mut rng = StdRng::seed_from_u64(2);
        assert!(adversarial_proof_search(&GulliblePath, &prep, 1, 2000, &mut rng).is_some());
        // ...the expired-deadline search stops before trying anything.
        let mut rng = StdRng::seed_from_u64(2);
        let expired = Deadline::after(Duration::ZERO);
        let got =
            adversarial_proof_search_within(&GulliblePath, &prep, 1, 2000, &mut rng, &expired);
        assert!(got.is_none());
        assert!(expired.expired());
    }

    #[test]
    fn completeness_within_expired_deadline_reports_budget_exhaustion() {
        use std::time::Duration;
        let inst = Instance::unlabeled(generators::cycle(6));
        let prep = prepare(&Bipartite, &inst);
        let expired = Deadline::after(Duration::ZERO);
        assert_eq!(
            check_instance_within(&Bipartite, &prep, &expired),
            Err(CompletenessError::DeadlineExpired)
        );
        // Unbounded: byte-for-byte the default path.
        assert_eq!(
            check_instance_within(&Bipartite, &prep, &Deadline::none()),
            check_instance(&Bipartite, &prep)
        );
    }
}
