//! Drive the `lcp-serve` daemon end to end: spawn it on an ephemeral
//! port, warm a cell, open a churn session, stream mutations, and read
//! the incremental verdict after each one.
//!
//! ```sh
//! cargo run --example serve_session
//! ```

use lcp::graph::families::GraphFamily;
use lcp::schemes::registry::Polarity;
use lcp_serve::protocol::parse_bits;
use lcp_serve::{CellCoord, Client, Server, ServerConfig, WireLabel, WireMutation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Spawn the daemon in-process on an ephemeral loopback port — the
    // same `Server` the `lcp-serve` binary wraps.
    let handle = Server::bind(ServerConfig::default())?.spawn()?;
    println!("daemon listening on {}", handle.addr());

    let mut client = Client::connect(handle.addr())?;
    let coord = CellCoord {
        scheme: "bipartite".into(),
        family: GraphFamily::Cycle,
        n: 100,
        seed: 7,
        polarity: Polarity::Yes,
    };

    // Warm the cell: registry build + skeleton BFS, paid once.
    let prepared = client.prepare(&coord)?;
    println!("prepared: {prepared:?}");

    // A resident verify reuses the cached skeletons (stats proves it:
    // the miss counter stays put while hits grow).
    let verdict = client.verify(&coord, Some(5_000))?;
    println!("verify:   {verdict:?}");
    println!("stats:    {:?}", client.stats()?);

    // Open a session — a private mutable copy of the resident cell —
    // and stream mutations; each answer is the incremental verdict.
    let opened = client.session_open(&coord)?;
    println!("session:  {opened:?}");
    let mutations = [
        // A chord between two same-colour nodes: both endpoints see a
        // monochromatic edge → rejected, having re-run only 2 nodes.
        WireMutation::EdgeInsert(0, 2),
        // Remove it again: accepted, and only the dirty ball re-ran.
        WireMutation::EdgeDelete(0, 2),
        // Scribble over one node's proof bits: its neighbourhood alarms.
        WireMutation::ProofRewrite(5, parse_bits("0")?),
        // Restore the 2-colouring bit (node 5 is odd → colour 1).
        WireMutation::ProofRewrite(5, parse_bits("1")?),
        // Touch a (unit) node label: dirties the ball, stays accepted.
        WireMutation::NodeLabelChange(8, WireLabel::Unit),
    ];
    for m in &mutations {
        let outcome = client.mutate(m)?;
        println!("mutate {:<17} -> {outcome:?}", m.kind());
    }

    // A seeded server-side churn burst, cross-checked against full
    // evaluation on the final step; `mismatches` must be 0.
    let churn = client.churn(21, 16, 4)?;
    println!(
        "churn:    steps={:?} mismatches={:?} max_impact={:?}",
        churn.get("steps"),
        churn.get("mismatches"),
        churn.get("max_impact"),
    );

    let closed = client.session_close()?;
    println!("closed:   {closed:?}");

    handle.stop()?;
    println!("daemon drained");
    Ok(())
}
