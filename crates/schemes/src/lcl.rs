//! The LCL framework (§3): locally checkable labellings in the sense of
//! Naor–Stockmeyer, generalized to `LCP(0)`.
//!
//! An [`LclProblem`] is a solution-verification problem whose correctness
//! is a pure radius-`r` condition on the labelled neighbourhood — no
//! proof bits at all. The paper identifies the (generalized) class `LCL`
//! with `LCP(0)` and the `LD` class of Fraigniaud–Korman–Peleg with
//! `LCP′(0)`; this module realizes both as a reusable constructor plus
//! the classical instances.

use lcp_core::{Instance, Proof, Scheme, View};
use std::sync::Arc;

/// An `LCP(0)` problem defined by a local acceptance predicate: the
/// verifier is the predicate itself and proofs are always empty.
///
/// `check` receives the radius-`r` labelled view; `truth` is the
/// centralized ground truth used by the conformance harness.
#[derive(Clone)]
pub struct LclProblem<N: Clone + 'static> {
    name: String,
    radius: usize,
    check: Arc<dyn Fn(&View<N, ()>) -> bool + Send + Sync>,
    truth: Arc<dyn Fn(&Instance<N, ()>) -> bool + Send + Sync>,
}

impl<N: Clone> std::fmt::Debug for LclProblem<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LclProblem({}, r={})", self.name, self.radius)
    }
}

impl<N: Clone + 'static> LclProblem<N> {
    /// Defines an LCL problem from its local predicate and ground truth.
    pub fn new<C, T>(name: impl Into<String>, radius: usize, check: C, truth: T) -> Self
    where
        C: Fn(&View<N, ()>) -> bool + Send + Sync + 'static,
        T: Fn(&Instance<N, ()>) -> bool + Send + Sync + 'static,
    {
        LclProblem {
            name: name.into(),
            radius,
            check: Arc::new(check),
            truth: Arc::new(truth),
        }
    }
}

impl<N: Clone + 'static> Scheme for LclProblem<N> {
    type Node = N;
    type Edge = ();

    fn name(&self) -> String {
        format!("lcl:{}", self.name)
    }

    fn radius(&self) -> usize {
        self.radius
    }

    fn holds(&self, inst: &Instance<N, ()>) -> bool {
        (self.truth)(inst)
    }

    fn prove(&self, inst: &Instance<N, ()>) -> Option<Proof> {
        (self.truth)(inst).then(|| Proof::empty(inst.n()))
    }

    fn verify(&self, view: &View<N, ()>) -> bool {
        (self.check)(view)
    }
}

/// Maximal independent set as an LCL: nodes labelled `true` form an
/// independent set, and every unlabelled node has a labelled neighbour.
pub fn mis() -> LclProblem<bool> {
    LclProblem::new(
        "maximal-independent-set",
        1,
        |view| {
            let c = view.center();
            let mine = *view.node_label(c);
            if mine {
                view.neighbors(c).iter().all(|&u| !*view.node_label(u))
            } else {
                view.neighbors(c).iter().any(|&u| *view.node_label(u))
            }
        },
        |inst| {
            let g = inst.graph();
            g.nodes().all(|v| {
                let mine = *inst.node_label(v);
                if mine {
                    g.neighbors(v).iter().all(|&u| !*inst.node_label(u))
                } else {
                    g.neighbors(v).iter().any(|&u| *inst.node_label(u))
                }
            })
        },
    )
}

/// Proper-colouring validity as an LCL: labels are colours `< k` and no
/// edge is monochromatic.
pub fn proper_coloring(k: usize) -> LclProblem<usize> {
    LclProblem::new(
        format!("proper-{k}-coloring"),
        1,
        move |view| {
            let c = view.center();
            let mine = *view.node_label(c);
            mine < k
                && view
                    .neighbors(c)
                    .iter()
                    .all(|&u| *view.node_label(u) != mine)
        },
        move |inst| {
            inst.node_labels().iter().all(|&c| c < k)
                && inst
                    .graph()
                    .edges()
                    .all(|(u, v)| inst.node_label(u) != inst.node_label(v))
        },
    )
}

/// The agreement problem of §3.2 (Korman–Kutten–Peleg's Lemma 2.1
/// example): all nodes carry the same label.
///
/// In the *LCP* model this is solvable with zero proof bits and radius 1
/// — each node compares itself with its neighbours — precisely the point
/// the paper makes when contrasting `LCP(0)` with proof labelling
/// schemes, where the verifier cannot see neighbours' input labels and
/// the problem needs nonzero proofs.
pub fn agreement() -> LclProblem<u64> {
    LclProblem::new(
        "agreement",
        1,
        |view| {
            let c = view.center();
            let mine = *view.node_label(c);
            view.neighbors(c)
                .iter()
                .all(|&u| *view.node_label(u) == mine)
        },
        |inst| {
            // Agreement within every component.
            let g = inst.graph();
            g.edges()
                .all(|(u, v)| inst.node_label(u) == inst.node_label(v))
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcp_core::evaluate;
    use lcp_core::harness::{check_completeness, check_soundness_exhaustive, Soundness};
    use lcp_graph::generators;

    #[test]
    fn greedy_mis_accepted() {
        let g = generators::grid(3, 4);
        let mut in_set = vec![false; g.n()];
        let mut blocked = vec![false; g.n()];
        for v in g.nodes() {
            if !blocked[v] {
                in_set[v] = true;
                blocked[v] = true;
                for &u in g.neighbors(v) {
                    blocked[u] = true;
                }
            }
        }
        let inst = Instance::with_node_data(g, in_set);
        let sizes =
            check_completeness(&mis(), &lcp_core::engine::prepare_sweep(&mis(), &[inst])).unwrap();
        assert_eq!(sizes, vec![0]);
    }

    #[test]
    fn non_maximal_set_rejected() {
        // Empty set on a path: nothing dominates.
        let inst = Instance::with_node_data(generators::path(4), vec![false; 4]);
        assert!(!mis().holds(&inst));
        match check_soundness_exhaustive(&mis(), &lcp_core::engine::prepare(&mis(), &inst), 1)
            .unwrap()
        {
            Soundness::Holds(_) => {}
            Soundness::Violated(p) => panic!("LCL fooled by proof {p:?} — it must ignore proofs"),
        }
    }

    #[test]
    fn dependent_set_rejected_locally() {
        let inst = Instance::with_node_data(generators::path(3), vec![true, true, false]);
        let verdict = evaluate(&mis(), &inst, &Proof::empty(3));
        assert!(verdict.rejecting().contains(&0));
        assert!(verdict.rejecting().contains(&1));
    }

    #[test]
    fn coloring_lcl() {
        let g = generators::cycle(6);
        let inst = Instance::with_node_data(g, vec![0usize, 1, 0, 1, 0, 1]);
        check_completeness(
            &proper_coloring(2),
            &lcp_core::engine::prepare_sweep(&proper_coloring(2), &[inst]),
        )
        .unwrap();
        let bad = Instance::with_node_data(generators::cycle(5), vec![0, 1, 0, 1, 0]);
        assert!(!proper_coloring(2).holds(&bad));
        let verdict = evaluate(&proper_coloring(2), &bad, &Proof::empty(5));
        assert!(!verdict.accepted());
    }

    #[test]
    fn out_of_palette_color_rejected() {
        let inst = Instance::with_node_data(generators::path(2), vec![0usize, 7]);
        assert!(!proper_coloring(3).holds(&inst));
        let verdict = evaluate(&proper_coloring(3), &inst, &Proof::empty(2));
        assert!(verdict.rejecting().contains(&1));
    }

    #[test]
    fn agreement_is_lcp_zero_here() {
        let inst = Instance::with_node_data(generators::cycle(5), vec![42u64; 5]);
        let sizes = check_completeness(
            &agreement(),
            &lcp_core::engine::prepare_sweep(&agreement(), &[inst]),
        )
        .unwrap();
        assert_eq!(sizes, vec![0]);
        let bad = Instance::with_node_data(generators::cycle(5), vec![1, 1, 2, 1, 1]);
        assert!(!agreement().holds(&bad));
        let verdict = evaluate(&agreement(), &bad, &Proof::empty(5));
        assert!(!verdict.accepted());
    }
}
