//! `--churn` mode: dynamic-graph conformance over the registry matrix.
//!
//! Where the static campaign asks "does the scheme hold up on this
//! instance?", the churn campaign asks "does **incremental**
//! re-verification hold up under mutation?": for every `(scheme, family,
//! size, polarity)` cell it opens a [`DynamicInstance`] over the cell's
//! sealed instance, drives a seeded mutation stream through it
//! (edge inserts/deletes and proof rewrites), re-verifies incrementally
//! after every mutation, and cross-checks the cached outputs against a
//! from-scratch evaluation every step. Any divergence — verdict,
//! witness, or a single stale node output — is a **mismatch** and fails
//! the campaign (exit 2), exactly like a static conformance violation.
//!
//! Seeding follows the workspace seed policy: every cell's churn stream
//! derives from `(campaign seed, scheme id, family, n, polarity)` via
//! the same splitmix as the static campaign (salted so the two never
//! share a stream), so reports are replayable from the seed alone and
//! adding schemes or families never perturbs existing cells. The
//! JSON report with `include_timing = false` is byte-identical across
//! runs, machines, and thread schedules.

use crate::{
    artifact_source_for, cell_seed, filtered_entries, map_coords, matrix_coords, panic_message,
    CampaignConfig, CellStatus, Coord,
};
use lcp_core::{ArtifactSource, Deadline};
use lcp_dynamic::churn::{run_churn_within, ChurnConfig};
use lcp_dynamic::{DynamicInstance, Mutation};
use lcp_graph::families::GraphFamily;
use lcp_schemes::registry::{CellRequest, Polarity, SchemeEntry};
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// How many mutations each churn cell applies, per profile.
pub fn default_steps(profile: crate::Profile) -> usize {
    match profile {
        crate::Profile::Smoke => 32,
        crate::Profile::Full => 200,
    }
}

/// One churned cell of the matrix.
#[derive(Clone, Debug)]
pub struct ChurnCellResult {
    /// Global index of this cell in the shared matrix enumeration —
    /// stable across sharding, what `campaign_merge` orders by.
    pub coord: usize,
    /// Registry id of the scheme.
    pub scheme: &'static str,
    /// Graph family the instance came from.
    pub family: GraphFamily,
    /// Requested size (pre-clamping).
    pub requested_n: usize,
    /// Actual `n(G)` (0 for skipped cells).
    pub n: usize,
    /// The builder's polarity intent for the *starting* instance
    /// (mutations routinely flip ground truth afterwards).
    pub polarity: Polarity,
    /// Mutations applied (may fall short of the budget on degenerate
    /// cells where no mutation is applicable).
    pub steps: usize,
    /// Edge insertions / deletions / proof rewrites applied.
    pub kinds: (usize, usize, usize),
    /// From-scratch cross-checks performed.
    pub checks: usize,
    /// Cross-checks that diverged — any nonzero fails the campaign.
    pub mismatches: usize,
    /// Largest single-mutation impact set.
    pub max_impact: usize,
    /// Verifier runs across all incremental passes.
    pub total_reverified: usize,
    /// `total_reverified / (steps · n)`: the fraction of full-sweep work
    /// the incremental engine actually performed, in parts per thousand.
    pub reverified_permille: usize,
    /// Whether the cell was skipped (unbuildable polarity).
    pub skipped: bool,
    /// Cell verdict: `Pass`/`Fail`/`Skip` mirror `skipped`/`mismatches`;
    /// `Crashed` and `TimedOut` carry the fault-tolerance outcomes
    /// (serialized as an extra `"status"` key only when present, so
    /// healthy reports keep their historical byte layout).
    pub status: CellStatus,
    /// Wall time of incremental apply+reverify (excluded from
    /// deterministic JSON).
    pub incremental_ms: u128,
    /// Wall time of the from-scratch cross-checks (excluded from
    /// deterministic JSON).
    pub full_ms: u128,
    /// Deterministic human-readable detail.
    pub detail: String,
    /// Timed-out cells only: the phase (always `churn`) and the cell's
    /// deadline-poll count — rendered into `detail` in the **timed**
    /// report only, mirroring the static campaign's
    /// [`crate::CellResult::timeout`].
    pub timeout: Option<(&'static str, u64)>,
}

/// The whole churn-campaign outcome.
#[derive(Clone, Debug)]
pub struct ChurnReport {
    /// Campaign seed.
    pub seed: u64,
    /// Profile name.
    pub profile: &'static str,
    /// Mutation budget per cell.
    pub steps: usize,
    /// Whether cells ran in parallel.
    pub parallel: bool,
    /// The shard this report covers (`None` = the whole matrix; merged
    /// reports are whole again).
    pub shard: Option<crate::Shard>,
    /// Per-cell results, in matrix order.
    pub cells: Vec<ChurnCellResult>,
    /// Total wall time (excluded from deterministic JSON).
    pub wall_ms: u128,
}

impl ChurnReport {
    /// Cells that ran (not skipped).
    pub fn ran(&self) -> usize {
        self.cells.iter().filter(|c| !c.skipped).count()
    }

    /// Total incremental-vs-full mismatches — the campaign is green iff
    /// this is zero.
    pub fn mismatches(&self) -> usize {
        self.cells.iter().map(|c| c.mismatches).sum()
    }

    /// Whether every cross-check on every cell agreed. Crashed and
    /// timed-out cells reached no verdict — they do not count as
    /// mismatches but surface through [`Self::unresolved`] and exit
    /// code 3.
    pub fn ok(&self) -> bool {
        self.mismatches() == 0
    }

    /// Cells that reached no verdict: crashed plus timed out.
    pub fn unresolved(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c.status, CellStatus::Crashed | CellStatus::TimedOut))
            .count()
    }

    /// Human-readable failure lines.
    pub fn failures(&self) -> Vec<String> {
        self.cells
            .iter()
            .filter(|c| c.mismatches > 0)
            .map(|c| {
                format!(
                    "{} on {}/n={}/{}: {} of {} cross-checks diverged ({})",
                    c.scheme,
                    c.family.name(),
                    c.n,
                    c.polarity.name(),
                    c.mismatches,
                    c.checks,
                    c.detail
                )
            })
            .collect()
    }

    /// Serializes the churn report; with `include_timing = false` the
    /// output is byte-identical for a configuration (the diffable form).
    pub fn to_json(&self, include_timing: bool) -> String {
        let mut w = String::with_capacity(1 << 14);
        w.push_str("{\n");
        let _ = writeln!(w, "  \"version\": 1,");
        let _ = writeln!(w, "  \"mode\": \"churn\",");
        let _ = writeln!(w, "  \"seed\": {},", self.seed);
        let _ = writeln!(w, "  \"profile\": {},", crate::json_str(self.profile));
        let _ = writeln!(w, "  \"steps_per_cell\": {},", self.steps);
        let _ = writeln!(w, "  \"parallel\": {},", self.parallel);
        if let Some(shard) = self.shard {
            let _ = writeln!(
                w,
                "  \"shard\": {{ \"index\": {}, \"count\": {} }},",
                shard.index, shard.count
            );
        }
        if include_timing {
            let _ = writeln!(w, "  \"wall_ms\": {},", self.wall_ms);
        }
        // Optional keys appear only when nonzero so healthy reports keep
        // their historical byte layout (the resume invariant depends on
        // it).
        let mut summary = format!(
            "\"cells\": {}, \"ran\": {}, \"mismatches\": {}",
            self.cells.len(),
            self.ran(),
            self.mismatches()
        );
        let crashed = self
            .cells
            .iter()
            .filter(|c| c.status == CellStatus::Crashed)
            .count();
        if crashed > 0 {
            let _ = write!(summary, ", \"crashed\": {crashed}");
        }
        let timed_out = self
            .cells
            .iter()
            .filter(|c| c.status == CellStatus::TimedOut)
            .count();
        if timed_out > 0 {
            let _ = write!(summary, ", \"timed_out\": {timed_out}");
        }
        let _ = writeln!(w, "  \"summary\": {{ {summary} }},");
        w.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            w.push_str("    { ");
            w.push_str(&churn_cell_fields(c, include_timing));
            w.push_str(" }");
            w.push_str(if i + 1 < self.cells.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        w.push_str("  ]\n}\n");
        w
    }

    /// Serializes the benchmark view of the churn campaign: per-cell
    /// incremental-vs-full wall times and work ratios, in the same
    /// flat-JSON shape as `BENCH_conformance.json` (`--bench-out`).
    /// Always timed; skipped cells are omitted (they measure nothing).
    pub fn to_bench_json(&self) -> String {
        let mut w = String::with_capacity(1 << 14);
        w.push_str("{\n");
        let _ = writeln!(w, "  \"bench\": \"churn-campaign\",");
        let _ = writeln!(w, "  \"seed\": {},", self.seed);
        let _ = writeln!(w, "  \"profile\": {},", crate::json_str(self.profile));
        let _ = writeln!(w, "  \"steps_per_cell\": {},", self.steps);
        let _ = writeln!(w, "  \"parallel\": {},", self.parallel);
        let _ = writeln!(w, "  \"wall_ms\": {},", self.wall_ms);
        w.push_str("  \"per_cell\": [\n");
        let measured: Vec<&ChurnCellResult> = self.cells.iter().filter(|c| !c.skipped).collect();
        for (i, c) in measured.iter().enumerate() {
            let _ = write!(
                w,
                "    {{ \"scheme\": {}, \"family\": {}, \"n\": {}, \"polarity\": {}, \
                 \"steps\": {}, \"reverified_permille\": {}, \"incremental_ms\": {}, \
                 \"full_ms\": {} }}",
                crate::json_str(c.scheme),
                crate::json_str(c.family.name()),
                c.n,
                crate::json_str(c.polarity.name()),
                c.steps,
                c.reverified_permille,
                c.incremental_ms,
                c.full_ms,
            );
            w.push_str(if i + 1 < measured.len() { ",\n" } else { "\n" });
        }
        w.push_str("  ]\n}\n");
        w
    }
}

/// One churn cell's JSON fields, brace-free — shared between
/// [`ChurnReport::to_json`] and the checkpoint writer. The `"status"`
/// key is emitted only for `crashed`/`timed_out` cells; for the
/// ordinary verdicts it is fully determined by `skipped`/`mismatches`,
/// and omitting it preserves the historical byte layout.
pub(crate) fn churn_cell_fields(c: &ChurnCellResult, include_timing: bool) -> String {
    let mut w = String::with_capacity(256);
    let detail = match c.timeout {
        // Timed form only, like the static campaign (see `cell_fields`).
        Some((phase, polls)) if include_timing => crate::json_str(&format!(
            "{}{}",
            c.detail,
            crate::timeout_suffix(phase, polls)
        )),
        _ => crate::json_str(&c.detail),
    };
    let _ = write!(
        w,
        "\"coord\": {}, \"scheme\": {}, \"family\": {}, \"requested_n\": {}, \"n\": {}, \
         \"polarity\": {}, \"skipped\": {}, \"steps\": {}, \"inserts\": {}, \
         \"deletes\": {}, \"rewrites\": {}, \"checks\": {}, \"mismatches\": {}, \
         \"max_impact\": {}, \"total_reverified\": {}, \"reverified_permille\": {}, \
         \"detail\": {}",
        c.coord,
        crate::json_str(c.scheme),
        crate::json_str(c.family.name()),
        c.requested_n,
        c.n,
        crate::json_str(c.polarity.name()),
        c.skipped,
        c.steps,
        c.kinds.0,
        c.kinds.1,
        c.kinds.2,
        c.checks,
        c.mismatches,
        c.max_impact,
        c.total_reverified,
        c.reverified_permille,
        detail,
    );
    if matches!(c.status, CellStatus::Crashed | CellStatus::TimedOut) {
        let _ = write!(w, ", \"status\": {}", crate::json_str(c.status.name()));
    }
    if include_timing {
        let _ = write!(
            w,
            ", \"incremental_ms\": {}, \"full_ms\": {}",
            c.incremental_ms, c.full_ms
        );
    }
    w
}

fn churn_one(
    entries: &[SchemeEntry],
    coord: &Coord,
    config: &CampaignConfig,
    source: &ArtifactSource,
    steps: usize,
) -> ChurnCellResult {
    let entry = &entries[coord.entry_idx];
    let seed = cell_seed(config.seed, entry.id, coord.family, coord.n, coord.polarity);
    let req = CellRequest {
        family: coord.family,
        n: coord.n,
        seed,
        polarity: coord.polarity,
    };
    let mut result = ChurnCellResult {
        coord: coord.index,
        scheme: entry.id,
        family: coord.family,
        requested_n: coord.n,
        n: 0,
        polarity: coord.polarity,
        steps: 0,
        kinds: (0, 0, 0),
        checks: 0,
        mismatches: 0,
        max_impact: 0,
        total_reverified: 0,
        reverified_permille: 0,
        skipped: true,
        status: CellStatus::Skip,
        incremental_ms: 0,
        full_ms: 0,
        detail: String::new(),
        timeout: None,
    };
    let Some(cell) = entry.build(&req) else {
        result.detail = "polarity not realizable on this family".into();
        return result;
    };
    // The dynamic cell thaws its mutable store from the shared source,
    // so with `--artifact-dir` even churn cells cold-start from mapped
    // cores — the mutation stream and verdicts are unaffected.
    let mut dynamic = DynamicInstance::from_cell(cell.with_source(source.clone()).dynamic_cell());
    result.n = dynamic.n();
    result.skipped = false;
    // Salted so the churn stream never collides with the static
    // campaign's adversarial/tamper streams for the same cell.
    let churn_config = ChurnConfig::new(seed ^ 0xd1_5ea5e);
    let deadline = config.cell_budget_ms.map_or_else(Deadline::none, |ms| {
        Deadline::after(Duration::from_millis(ms))
    });
    let run = run_churn_within(&mut dynamic, &churn_config, steps, 1, &deadline);
    result.steps = run.steps.len();
    for step in &run.steps {
        match step.mutation {
            Mutation::EdgeInsert(..) => result.kinds.0 += 1,
            Mutation::EdgeDelete(..) => result.kinds.1 += 1,
            Mutation::ProofRewrite(..) => result.kinds.2 += 1,
            Mutation::NodeLabelChange(..) => {}
        }
    }
    result.checks = run.checks;
    result.mismatches = run.mismatches;
    result.max_impact = run.max_impact;
    result.total_reverified = run.total_reverified;
    let full_work = result.steps * result.n.max(1);
    result.reverified_permille = (run.total_reverified * 1000)
        .checked_div(full_work)
        .unwrap_or(0);
    result.incremental_ms = run.incremental_nanos / 1_000_000;
    result.full_ms = run.full_nanos / 1_000_000;
    if run.timed_out {
        result.status = CellStatus::TimedOut;
        result.detail = format!(
            "wall budget expired after {} of {steps} mutations",
            result.steps
        );
        result.timeout = Some(("churn", deadline.polls()));
    } else if run.mismatches == 0 {
        result.status = CellStatus::Pass;
        result.detail = format!(
            "{} mutations, {}‰ of full-sweep verifier work, all {} cross-checks agreed",
            result.steps, result.reverified_permille, result.checks
        );
    } else {
        result.status = CellStatus::Fail;
        result.detail = format!(
            "incremental reverify diverged from from-scratch evaluation on {} of {} checks",
            run.mismatches, run.checks
        );
    }
    result
}

/// The `crashed` verdict for a churn cell whose both attempts panicked.
fn crashed_churn_cell(
    entry: &SchemeEntry,
    coord: &Coord,
    first: String,
    second: String,
) -> ChurnCellResult {
    ChurnCellResult {
        coord: coord.index,
        scheme: entry.id,
        family: coord.family,
        requested_n: coord.n,
        n: 0,
        polarity: coord.polarity,
        steps: 0,
        kinds: (0, 0, 0),
        checks: 0,
        mismatches: 0,
        max_impact: 0,
        total_reverified: 0,
        reverified_permille: 0,
        skipped: false,
        status: CellStatus::Crashed,
        incremental_ms: 0,
        full_ms: 0,
        detail: if first == second {
            format!("panic: {first} (deterministic: retry panicked identically)")
        } else {
            format!("panic: {first} (retry panicked: {second})")
        },
        timeout: None,
    }
}

/// [`churn_one`] inside the same panic boundary as the static runner:
/// one same-seed retry, then a `crashed` verdict.
fn churn_one_isolated(
    entries: &[SchemeEntry],
    coord: &Coord,
    config: &CampaignConfig,
    source: &ArtifactSource,
    steps: usize,
) -> ChurnCellResult {
    let attempt = || {
        catch_unwind(AssertUnwindSafe(|| {
            churn_one(entries, coord, config, source, steps)
        }))
    };
    match attempt() {
        Ok(result) => result,
        Err(payload) => {
            let first = panic_message(payload.as_ref());
            match attempt() {
                Ok(mut result) => {
                    crate::metrics::FLAKE_RETRIES.inc();
                    let _ = write!(
                        result.detail,
                        " [recovered: first attempt panicked: {first}]"
                    );
                    result
                }
                Err(payload) => crashed_churn_cell(
                    &entries[coord.entry_idx],
                    coord,
                    first,
                    panic_message(payload.as_ref()),
                ),
            }
        }
    }
}

/// Runs the churn campaign over the same matrix the static campaign
/// sweeps — the coordinates come from the same shared enumeration, so
/// churn cells correspond one-to-one to static cells under the shared
/// seed policy (and shard under `--shard i/N` identically).
pub fn run_churn_campaign(config: &CampaignConfig, steps: usize) -> ChurnReport {
    run_churn_campaign_with(&filtered_entries(config), config, steps)
}

/// [`run_churn_campaign`] over an explicit entry list — the injection
/// seam the fault-tolerance tests use, mirroring
/// [`crate::run_campaign_with`].
pub fn run_churn_campaign_with(
    entries: &[SchemeEntry],
    config: &CampaignConfig,
    steps: usize,
) -> ChurnReport {
    run_churn_campaign_inner(
        entries,
        config,
        steps,
        None,
        &std::collections::HashMap::new(),
    )
}

/// The full churn runner with checkpoint/resume hooks (see
/// [`crate::run_campaign_inner`]).
pub(crate) fn run_churn_campaign_inner(
    entries: &[SchemeEntry],
    config: &CampaignConfig,
    steps: usize,
    writer: Option<&crate::checkpoint::CheckpointWriter>,
    resume: &std::collections::HashMap<usize, ChurnCellResult>,
) -> ChurnReport {
    let started = Instant::now();
    let _campaign_span = lcp_obs::start_span(crate::metrics::campaign_span());
    let coords = matrix_coords(entries, config);
    let source = artifact_source_for(config);
    let cells = map_coords(&coords, |c: &Coord| {
        if let Some(done) = resume.get(&c.index) {
            crate::metrics::CELLS_RESUMED.inc();
            return done.clone();
        }
        let cell = {
            let _cell_span = lcp_obs::start_span(crate::metrics::churn_cell_span());
            churn_one_isolated(entries, c, config, &source, steps)
        };
        crate::metrics::record_cell(cell.status, cell.incremental_ms + cell.full_ms);
        if let Some(w) = writer {
            w.append(&format!("{{ {} }}", churn_cell_fields(&cell, true)));
        }
        cell
    });

    ChurnReport {
        seed: config.seed,
        profile: config.profile.name(),
        steps,
        parallel: cfg!(feature = "parallel"),
        shard: config.shard,
        cells,
        wall_ms: started.elapsed().as_millis(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Profile;

    fn tiny_config(scheme: &str) -> CampaignConfig {
        CampaignConfig {
            sizes: vec![8],
            scheme_filter: Some(scheme.into()),
            ..CampaignConfig::for_profile(Profile::Smoke, 7)
        }
    }

    #[test]
    fn churned_registry_cells_stay_equivalent() {
        for scheme in ["bipartite", "eulerian", "spanning-tree"] {
            let report = run_churn_campaign(&tiny_config(scheme), 16);
            assert!(report.ok(), "{scheme}: {:?}", report.failures());
            assert!(report.ran() >= 1, "{scheme} churned no cells");
            for c in report.cells.iter().filter(|c| !c.skipped) {
                assert_eq!(c.checks, c.steps, "every step cross-checked");
            }
        }
    }

    #[test]
    fn churn_report_json_is_deterministic_modulo_timing() {
        let config = tiny_config("bipartite");
        let a = run_churn_campaign(&config, 12).to_json(false);
        let b = run_churn_campaign(&config, 12).to_json(false);
        assert_eq!(a, b);
        assert!(!a.contains("_ms"));
        assert!(a.contains("\"mode\": \"churn\""));
        let timed = run_churn_campaign(&config, 12).to_json(true);
        assert!(timed.contains("incremental_ms"));
    }

    #[test]
    fn incremental_work_is_a_fraction_of_full_sweeps() {
        // On a 32-node cycle with local mutations, incremental
        // re-verification must re-run well under half the verifiers a
        // full sweep per mutation would.
        let config = CampaignConfig {
            sizes: vec![32],
            family_filter: Some(GraphFamily::Cycle),
            ..tiny_config("bipartite")
        };
        let report = run_churn_campaign(&config, 24);
        assert!(report.ok(), "{:?}", report.failures());
        for c in report.cells.iter().filter(|c| !c.skipped) {
            assert!(
                c.reverified_permille < 500,
                "{}/{}: {}‰ — not incremental",
                c.scheme,
                c.family.name(),
                c.reverified_permille
            );
        }
    }
}
