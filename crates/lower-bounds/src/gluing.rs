//! The §5.3 cycle-gluing attack (Figure 1).
//!
//! Given a scheme on the cycle family and parameters `(n, k)`, the attack
//!
//! 1. builds the identifier-patterned cycles `C(a, b)` for `a ∈ A = {1..n}`,
//!    `b ∈ B = {n+1..2n}` (§5.3's exact pattern, so identifier sets of
//!    different cycles overlap only at the right places);
//! 2. labels each cycle (caller-supplied, e.g. "mark one leader"), runs
//!    the prover, and records the *colour* `c(a, b)`: all labels and
//!    proof bits within distance `2r + 1` of `a` or `b` along the cycle;
//! 3. finds a monochromatic `2k`-cycle in the edge-coloured `K_{n,n}` —
//!    the step Bondy–Simonovits guarantees for `o(log n)`-bit proofs —
//!    using the exact even-cycle finder from `lcp-graph`;
//! 4. glues the `k` donor cycles into one `kn`-cycle, inheriting labels
//!    and proofs, and runs the verifier everywhere.
//!
//! If the glued instance is a no-instance and all nodes accept, the
//! scheme provably is not sound at its proof size — the paper's lower
//! bound, exhibited.

use crate::CounterExample;
use lcp_core::{BitString, Instance, Proof, Scheme};
use lcp_graph::traversal::{find_cycle_of_length, CycleSearch};
use lcp_graph::{Graph, NodeId};
use std::collections::BTreeMap;
use std::hash::Hash;

/// Outcome of a gluing attack.
#[derive(Clone, Debug)]
pub enum GluingOutcome<N = (), E = ()> {
    /// The verifier accepted a glued no-instance: the scheme is unsound
    /// at this proof size.
    Fooled(Box<CounterExample<N, E>>),
    /// No monochromatic `2k`-cycle was found: the proofs carry enough
    /// information to avoid collisions at this `n` (the expected outcome
    /// for honest `Θ(log n)` schemes).
    NoMonochromaticCycle {
        /// Number of distinct colours observed.
        colors: usize,
        /// Number of (a, b) pairs whose instances were provable.
        pairs: usize,
    },
    /// The glued instance was accepted but is *not* a no-instance (the
    /// property survived gluing — wrong parameters for this property).
    GluedInstanceIsYes,
    /// The glued instance was correctly rejected by some node.
    SchemeSurvived {
        /// Nodes that rejected the stitched proof.
        rejecting: Vec<usize>,
    },
    /// The prover failed on the base cycles (family/labeling mismatch).
    ProverFailed,
    /// A donor cycle's *honest* proof was rejected — a scheme bug
    /// surfaced by the attack's sanity sweep, with the witness node.
    HonestProofRejected {
        /// The `(a, b)` identifier pair of the failing cycle.
        pair: (u64, u64),
        /// The rejecting node.
        node: usize,
    },
}

impl<N, E> GluingOutcome<N, E> {
    /// Whether the attack produced a counterexample.
    pub fn fooled(&self) -> bool {
        matches!(self, GluingOutcome::Fooled(_))
    }
}

/// Configuration for [`glue_cycles`].
pub struct GluingAttack {
    /// Base cycle length `n` (must exceed `4·(2r+1)` so the two colour
    /// windows cannot overlap).
    pub n: usize,
    /// Number of cycles to glue (`k ≥ 2`).
    pub k: usize,
    /// Step budget for the exact even-cycle search.
    pub cycle_search_budget: usize,
}

impl GluingAttack {
    /// A default configuration: glue `k` cycles of length `n`.
    pub fn new(n: usize, k: usize) -> Self {
        GluingAttack {
            n,
            k,
            cycle_search_budget: 2_000_000,
        }
    }
}

/// The §5.3 identifier pattern: the `n`-cycle `C(a, b)` for `a ∈ {1..n}`,
/// `b ∈ {n+1..2n}`, listing identifiers in cycle order
/// `a, a+4n, a+6n, …, a+2n·n₁, b+2n·n₂, …, b+6n, b+4n, b`.
pub fn cycle_ids(n: usize, a: u64, b: u64) -> Vec<NodeId> {
    let n1 = n / 2;
    let n2 = n - n1;
    let two_n = 2 * n as u64;
    let mut ids = Vec::with_capacity(n);
    ids.push(NodeId(a));
    for j in 2..=n1 as u64 {
        ids.push(NodeId(a + two_n * j));
    }
    for j in (2..=n2 as u64).rev() {
        ids.push(NodeId(b + two_n * j));
    }
    ids.push(NodeId(b));
    ids
}

/// Runs the gluing attack against `scheme`.
///
/// `make_instance` attaches the auxiliary labels to a base cycle — e.g.
/// mark one node as leader, or label a maximum matching. It receives the
/// cycle graph (whose node order follows [`cycle_ids`], with `a` at index
/// 0 and `b` at index `n − 1`) and must keep the *junction-adjacent*
/// labelling deterministic in cycle position (the §5.3 construction
/// inherits labels, so labels near `a`/`b` enter the colour).
///
/// `junction_label` is the edge label given to the freshly created glue
/// edges (`None` for unlabelled problems or "unmatched").
pub fn glue_cycles<S, F>(
    scheme: &S,
    attack: &GluingAttack,
    mut make_instance: F,
    junction_label: Option<S::Edge>,
) -> GluingOutcome<S::Node, S::Edge>
where
    S: Scheme + Sync,
    S::Node: Clone + Eq + Hash + Ord + Send + Sync,
    S::Edge: Clone + Eq + Hash + Ord + Send + Sync,
    F: FnMut(Graph) -> Instance<S::Node, S::Edge>,
{
    let (n, k, r) = (attack.n, attack.k, scheme.radius());
    assert!(k >= 2, "gluing needs at least two cycles");
    let window = 2 * r + 1;
    assert!(
        n > 2 * window,
        "cycle length {n} too short for two disjoint windows of {window}"
    );

    // Colour key: labels + proof strings of the 2·(2r+1) junction-nearest
    // nodes, in a fixed cycle-position order.
    type Color<N, E> = Vec<(N, Option<E>, BitString)>;
    let mut by_color: BTreeMap<Color<S::Node, S::Edge>, Vec<(u64, u64)>> = BTreeMap::new();
    let mut instances: BTreeMap<(u64, u64), (Instance<S::Node, S::Edge>, Proof)> = BTreeMap::new();
    let mut pairs = 0usize;

    for a in 1..=n as u64 {
        for b in (n as u64 + 1)..=(2 * n as u64) {
            let g = Graph::cycle_with_ids(cycle_ids(n, a, b)).expect("pattern ids are unique");
            let inst = make_instance(g);
            let Some(proof) = scheme.prove(&inst) else {
                continue;
            };
            if let Some(node) = lcp_core::evaluate_until_reject(scheme, &inst, &proof) {
                return GluingOutcome::HonestProofRejected { pair: (a, b), node };
            }
            pairs += 1;
            // Window positions: 0..=2r and n-1-2r..=n-1.
            let mut color: Color<S::Node, S::Edge> = Vec::with_capacity(2 * window);
            for pos in (0..window).chain(n - window..n) {
                let next = (pos + 1) % n;
                color.push((
                    inst.node_label(pos).clone(),
                    inst.edge_label(pos, next).cloned(),
                    proof.get(pos).to_bitstring(),
                ));
            }
            by_color.entry(color).or_default().push((a, b));
            instances.insert((a, b), (inst, proof));
        }
    }

    if pairs == 0 {
        return GluingOutcome::ProverFailed;
    }

    // Hunt for a monochromatic 2k-cycle in K_{n,n} restricted to each
    // colour class.
    let colors = by_color.len();
    for (_, class) in by_color.iter() {
        if class.len() < 2 * k {
            continue;
        }
        // Build the bipartite class graph on A ∪ B.
        let mut cg = Graph::new();
        let mut index: BTreeMap<u64, usize> = BTreeMap::new();
        for &(a, b) in class {
            for id in [a, b] {
                if let std::collections::btree_map::Entry::Vacant(e) = index.entry(id) {
                    let idx = cg.add_node(NodeId(id)).expect("ids unique");
                    e.insert(idx);
                }
            }
        }
        for &(a, b) in class {
            cg.add_edge(index[&a], index[&b]).expect("pairs unique");
        }
        let found = find_cycle_of_length(&cg, 2 * k, attack.cycle_search_budget);
        let CycleSearch::Found(cycle) = found else {
            continue;
        };
        // Orient the cycle to start at an A-node (id ≤ n).
        let start = cycle
            .iter()
            .position(|&v| cg.id(v).0 <= n as u64)
            .expect("bipartite cycle visits A");
        let rotated: Vec<u64> = (0..2 * k)
            .map(|i| cg.id(cycle[(start + i) % (2 * k)]).0)
            .collect();
        // rotated = a₁, b₁, a₂, b₂, … (adjacent pairs share the colour).
        let ab_pairs: Vec<(u64, u64)> = (0..k)
            .map(|i| (rotated[2 * i], rotated[2 * i + 1]))
            .collect();
        return build_glued(scheme, n, &ab_pairs, &instances, junction_label);
    }

    GluingOutcome::NoMonochromaticCycle { colors, pairs }
}

/// Glues the donor cycles `C(aᵢ, bᵢ)` into one `kn`-cycle, inheriting
/// labels and proofs, and evaluates the verifier.
fn build_glued<S>(
    scheme: &S,
    n: usize,
    ab_pairs: &[(u64, u64)],
    instances: &BTreeMap<(u64, u64), (Instance<S::Node, S::Edge>, Proof)>,
    junction_label: Option<S::Edge>,
) -> GluingOutcome<S::Node, S::Edge>
where
    S: Scheme + Sync,
    S::Node: Clone + Eq + Hash + Ord + Send + Sync,
    S::Edge: Clone + Eq + Hash + Ord + Send + Sync,
{
    let k = ab_pairs.len();
    // Node order of the glued cycle: C(a₁,b₁) in order, then C(a₂,b₂), …
    // with glue edges b_{i-1}→a_i and b_k→a₁ (each donor's own a–b edge
    // is cut).
    let mut g = Graph::with_capacity(k * n);
    let mut labels: Vec<S::Node> = Vec::with_capacity(k * n);
    let mut proof_strings: Vec<BitString> = Vec::with_capacity(k * n);
    let mut edge_labels: lcp_core::EdgeMap<S::Edge> = lcp_core::EdgeMap::new();

    for (i, &(a, b)) in ab_pairs.iter().enumerate() {
        let (inst, proof) = &instances[&(a, b)];
        let donor = inst.graph();
        let base = i * n;
        for pos in 0..n {
            g.add_node(donor.id(pos))
                .expect("donor id sets are disjoint");
            labels.push(inst.node_label(pos).clone());
            proof_strings.push(proof.get(pos).to_bitstring());
        }
        // Arc edges pos–pos+1 (the donor's a–b wrap edge is *not* added).
        for pos in 0..n - 1 {
            g.add_edge(base + pos, base + pos + 1).expect("fresh edge");
            if let Some(l) = inst.edge_label(pos, pos + 1) {
                edge_labels.insert(lcp_graph::norm_edge(base + pos, base + pos + 1), l.clone());
            }
        }
    }
    // Glue edges: b of donor i to a of donor i+1.
    for i in 0..k {
        let b_i = i * n + (n - 1);
        let a_next = ((i + 1) % k) * n;
        g.add_edge(b_i, a_next).expect("fresh glue edge");
        if let Some(l) = junction_label.clone() {
            edge_labels.insert(lcp_graph::norm_edge(b_i, a_next), l);
        }
    }

    let glued = Instance::with_data(g, labels, edge_labels);
    let proof = Proof::from_strings(proof_strings);
    if scheme.holds(&glued) {
        return GluingOutcome::GluedInstanceIsYes;
    }
    let verdict = lcp_core::engine::prepare(scheme, &glued).evaluate(scheme, &proof);
    if verdict.accepted() {
        GluingOutcome::Fooled(Box::new(CounterExample {
            instance: glued,
            proof,
            verdict,
        }))
    } else {
        GluingOutcome::SchemeSurvived {
            rejecting: verdict.rejecting(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_ids_match_figure_1() {
        // Figure 1: n = 10 gives C(3,12) = 3,43,63,83,103,112,92,72,52,12.
        let ids = cycle_ids(10, 3, 12);
        let expect: Vec<u64> = vec![3, 43, 63, 83, 103, 112, 92, 72, 52, 12];
        assert_eq!(ids, expect.into_iter().map(NodeId).collect::<Vec<_>>());
    }

    #[test]
    fn cycle_ids_are_unique_and_disjoint_where_promised() {
        let n = 12;
        let ids1 = cycle_ids(n, 3, 20);
        let ids2 = cycle_ids(n, 5, 18);
        let set1: std::collections::HashSet<_> = ids1.iter().collect();
        assert_eq!(set1.len(), n);
        // a ≠ a' and b ≠ b': fully disjoint.
        assert!(ids2.iter().all(|id| !set1.contains(id)));
        // Shared a: the a-arm is shared, the b-arm is not.
        let ids3 = cycle_ids(n, 3, 18);
        assert!(ids3.contains(&NodeId(3)));
        assert!(set1.contains(&NodeId(3)));
    }

    #[test]
    fn odd_lengths_have_odd_pattern() {
        for n in [9usize, 11, 15] {
            let ids = cycle_ids(n, 2, (n + 3) as u64);
            assert_eq!(ids.len(), n);
            let set: std::collections::HashSet<_> = ids.iter().collect();
            assert_eq!(set.len(), n);
        }
    }
}
