//! Auditable combinatorial optimization (§2.3): a max-weight assignment
//! with an LP-duality certificate that any node can check locally.
//!
//! Scenario: tasks and workers form a weighted bipartite graph; a
//! scheduler computes a maximum-weight assignment and publishes `O(log W)`
//! bits per node (the dual prices). Every participant audits its own
//! neighbourhood — no one needs to re-run the global optimizer.
//!
//! ```sh
//! cargo run --example certified_matching
//! ```

use lcp::core::{evaluate, EdgeMap, Instance, Scheme};
use lcp::graph::matching::{max_weight_bipartite_matching, EdgeWeightMap};
use lcp::graph::{generators, traversal};
use lcp::schemes::matching::{MaxWeightMatchingBipartite, WeightedEdge};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    // 8 workers × 8 tasks, random compatibility with integer values.
    let g = generators::random_bipartite(8, 8, 0.6, &mut rng);
    let side = traversal::bipartition(&g).expect("bipartite by construction");
    let weights: EdgeWeightMap = g
        .edges()
        .map(|(u, v)| ((u, v), rng.random_range(1..=20u64)))
        .collect();

    // The scheduler solves the assignment problem…
    let sol = max_weight_bipartite_matching(&g, &side, &weights);
    println!(
        "assignment weight = {}, {} pairs matched",
        sol.weight,
        sol.edges().len()
    );

    // …and publishes the instance (weights + matching) with dual prices.
    let matched: std::collections::BTreeSet<(usize, usize)> = sol.edges().into_iter().collect();
    let mut edge_data = EdgeMap::new();
    for (k, w) in &weights {
        edge_data.insert(
            *k,
            WeightedEdge {
                weight: *w,
                matched: matched.contains(k),
            },
        );
    }
    let inst = Instance::with_data(g, vec![(); 16], edge_data);
    let proof = MaxWeightMatchingBipartite
        .prove(&inst)
        .expect("optimal assignment certifiable");
    println!(
        "certificate: {} bits per node (duals ≤ W, γ-coded)",
        proof.size()
    );

    let verdict = evaluate(&MaxWeightMatchingBipartite, &inst, &proof);
    println!("all nodes audit OK: {}", verdict.accepted());
    assert!(verdict.accepted());

    // A corrupt scheduler claims a *worse* matching is optimal: drop a
    // matched pair. The slackness conditions fail at the now-unmatched
    // nodes with positive prices.
    let mut tampered = EdgeMap::new();
    let drop = sol.edges()[0];
    for (k, w) in &weights {
        tampered.insert(
            *k,
            WeightedEdge {
                weight: *w,
                matched: matched.contains(k) && *k != drop,
            },
        );
    }
    let worse = Instance::with_data(inst.graph().clone(), vec![(); 16], tampered);
    assert!(!MaxWeightMatchingBipartite.holds(&worse));
    let verdict = evaluate(&MaxWeightMatchingBipartite, &worse, &proof);
    println!(
        "dropped pair {:?}: auditors {:?} reject",
        drop,
        verdict.rejecting()
    );
    assert!(!verdict.accepted());
}
